"""Tests for the search-strategy zoo and the bandit meta-tuner."""

import numpy as np
import pytest

from repro.core.measure import Measurer
from repro.core.results import MeasurementDB
from repro.core.strategies import (
    STRATEGIES,
    STRATEGY_CHOICES,
    BanditMetaTuner,
    SearchSettings,
    SearchTuner,
    Subspace,
    make_strategy,
    run_search,
)
from repro.kernels.convolution import ConvolutionKernel, ConvolutionProblem
from repro.runtime import Context
from repro.simulator import NVIDIA_K40

pytestmark = pytest.mark.search

ZOO = sorted(STRATEGIES)
#: Strategies whose proposals explore freely (exhaustive just enumerates).
SEARCHERS = [n for n in ZOO if n != "exhaustive"]


def _measurer(seed=0, spec=None, db=None):
    spec = spec or ConvolutionKernel()
    return Measurer(Context(NVIDIA_K40, seed=seed), spec, db=db)


class TestSubspace:
    def test_matches_indices_with(self):
        space = ConvolutionKernel().space
        sub = Subspace(space, {"use_local": 1, "unroll": 0})
        got = np.sort(
            sub.flat_of_digits(sub.digits_of_sub(np.arange(sub.size))).ravel()
        )
        want = np.sort(space.indices_with(use_local=1, unroll=0))
        assert np.array_equal(got, want)
        assert np.array_equal(np.sort(sub.indices()), want)

    def test_unpinned_sampling_matches_legacy(self):
        space = ConvolutionKernel().space
        sub = Subspace(space, {})
        a = sub.sample_flat(100, np.random.default_rng(3))
        b = space.sample_indices(100, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_digit_roundtrip(self):
        space = ConvolutionKernel().space
        sub = Subspace(space, {"pad": 1})
        rng = np.random.default_rng(0)
        flat = sub.sample_flat(50, rng)
        digits = sub.digits_of_flat(flat)
        assert np.array_equal(sub.flat_of_digits(digits), flat)

    def test_unknown_pin_rejected(self):
        with pytest.raises(ValueError, match="unknown pinned"):
            Subspace(ConvolutionKernel().space, {"nope": 1})

    def test_pinned_sampling_is_without_replacement(self):
        space = ConvolutionKernel().space
        sub = Subspace(space, {"use_local": 0})
        flat = sub.sample_flat(500, np.random.default_rng(1))
        assert len(set(flat.tolist())) == 500


class TestSettings:
    def test_pins_normalized_and_hashable(self):
        a = SearchSettings(pins={"b": 1, "a": 2})
        b = SearchSettings(pins=(("a", 2), ("b", 1)))
        assert a == b
        assert hash(a) == hash(b)
        assert a.pins_dict() == {"a": 2, "b": 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchSettings(budget=0)
        with pytest.raises(ValueError):
            SearchSettings(batch=0)
        with pytest.raises(ValueError):
            SearchSettings(max_cost_s=-1.0)


class TestZooContracts:
    @pytest.mark.parametrize("name", ZOO)
    def test_budget_respected_and_accounted(self, name):
        m = _measurer(seed=2)
        settings = SearchSettings(budget=120, batch=32)
        out = run_search(
            m, make_strategy(name, m, settings), np.random.default_rng(2),
            settings,
        )
        assert out.n_proposed <= 120
        assert out.strategy == name
        # No DB attached: every charged slot is a simulator evaluation or
        # a cached re-measure, and nothing is free.
        assert out.n_measured == m.stats.n_simulated + m.stats.n_cache_hits
        assert out.n_free == 0
        assert out.best_index >= 0
        assert out.cost_s == m.context.ledger.total_s

    @pytest.mark.parametrize("name", SEARCHERS)
    def test_pins_respected(self, name):
        spec = ConvolutionKernel()
        m = _measurer(seed=4, spec=spec)
        settings = SearchSettings(
            budget=100, batch=25, pins={"use_local": 1, "unroll": 0}
        )
        allowed = set(
            int(i) for i in spec.space.indices_with(use_local=1, unroll=0)
        )
        proposed = []
        strategy = make_strategy(name, m, settings)
        rng = np.random.default_rng(4)
        while True:
            batch = np.asarray(strategy.propose(rng, 25)).ravel()
            if batch.size == 0 or sum(len(b) for b in proposed) >= 100:
                break
            proposed.append(batch)
            strategy.observe(batch, m.measure_batch(batch))
        assert proposed
        for batch in proposed:
            assert set(int(i) for i in batch) <= allowed

    @pytest.mark.parametrize("name", ZOO)
    def test_bit_reproducible_from_seed(self, name):
        def once():
            m = _measurer(seed=9)
            settings = SearchSettings(budget=150, batch=30)
            out = run_search(
                m, make_strategy(name, m, settings),
                np.random.default_rng(9), settings,
            )
            return (
                out.best_index,
                float.hex(out.best_time_s),
                float.hex(out.cost_s),
                out.n_proposed,
                out.n_measured,
                out.rounds,
            )

        assert once() == once()

    @pytest.mark.parametrize("name", ZOO)
    def test_state_restore_resumes_identically(self, name):
        settings = SearchSettings(budget=200, batch=25)

        def drive(strategy, m, rng, rounds):
            batches = []
            for _ in range(rounds):
                batch = np.asarray(strategy.propose(rng, 25)).ravel()
                if batch.size == 0:
                    break
                strategy.observe(batch, m.measure_batch(batch))
                batches.append(batch.tolist())
            return batches

        # Reference: 4 rounds straight through.
        m1 = _measurer(seed=5)
        s1 = make_strategy(name, m1, settings)
        rng1 = np.random.default_rng(5)
        want = drive(s1, m1, rng1, 4)

        # Resumed: 2 rounds, snapshot, replay into a fresh instance (and a
        # fresh measurer replaying the same simulator stream), 2 more.
        m2 = _measurer(seed=5)
        s2 = make_strategy(name, m2, settings)
        rng2 = np.random.default_rng(5)
        got = drive(s2, m2, rng2, 2)
        snapshot = s2.state()
        rng_state = rng2.bit_generator.state
        s3 = make_strategy(name, m2, settings)
        s3.restore(snapshot)
        rng3 = np.random.default_rng()
        rng3.bit_generator.state = rng_state
        got += drive(s3, m2, rng3, 2)
        assert got == want

    def test_exhaustive_covers_subspace_exactly_once(self):
        spec = ConvolutionKernel()
        m = _measurer(seed=1, spec=spec)
        settings = SearchSettings(
            budget=10**9, batch=512, pins={"use_local": 1, "use_image": 1,
                                           "pad": 0, "interleaved": 0,
                                           "unroll": 0}
        )
        out = run_search(
            m, make_strategy("exhaustive", m, settings),
            np.random.default_rng(1), settings,
        )
        want = spec.space.indices_with(
            use_local=1, use_image=1, pad=0, interleaved=0, unroll=0
        )
        assert out.stop_reason == "exhausted"
        assert out.n_proposed == want.size

    def test_max_cost_s_stops_run(self):
        m = _measurer(seed=3)
        settings = SearchSettings(budget=10**6, batch=16, max_cost_s=30.0)
        out = run_search(
            m, make_strategy("random", m, settings),
            np.random.default_rng(3), settings,
        )
        assert out.stop_reason == "cost"
        # Overshoot bounded by one batch.
        assert out.rounds == len(range(0, out.n_proposed, 16))

    def test_db_hits_are_free(self):
        db = MeasurementDB()
        settings = SearchSettings(budget=100, batch=100)
        m1 = _measurer(seed=6, db=db)
        out1 = run_search(
            m1, make_strategy("random", m1, settings),
            np.random.default_rng(6), settings,
        )
        m2 = _measurer(seed=6, db=db)
        out2 = run_search(
            m2, make_strategy("random", m2, settings),
            np.random.default_rng(6), settings,
        )
        assert out1.n_measured == 100
        assert out2.n_measured == 0
        assert out2.n_free == 100
        assert m2.context.ledger.total_s == 0.0
        assert out2.best_index == out1.best_index


class TestBandit:
    def test_deterministic_and_pools_measurements(self):
        def once():
            m = _measurer(seed=8)
            settings = SearchSettings(budget=300, batch=40)
            out = BanditMetaTuner(m, settings).run(np.random.default_rng(8))
            return (
                out.best_index,
                float.hex(out.best_time_s),
                float.hex(out.cost_s),
                [(a.name, a.pulls, a.n_measured) for a in out.arms],
            )

        first, second = once(), once()
        assert first == second
        # Incumbent is the best across *all* arms.
        assert first[0] >= 0

    def test_every_arm_gets_a_first_pull(self):
        m = _measurer(seed=8)
        settings = SearchSettings(budget=300, batch=40)
        out = BanditMetaTuner(m, settings).run(np.random.default_rng(8))
        assert all(a.pulls >= 1 for a in out.arms)
        assert sum(a.n_proposed for a in out.arms) == out.n_proposed

    def test_shared_db_restored_and_leaderboard_sorted(self):
        m = _measurer(seed=12)
        assert m.db is None
        settings = SearchSettings(budget=200, batch=32)
        out = BanditMetaTuner(m, settings).run(np.random.default_rng(12))
        assert m.db is None  # the run-scoped shared DB is detached again
        board = out.leaderboard()
        finite = [a.best_time_s for a in board if np.isfinite(a.best_time_s)]
        assert finite == sorted(finite)
        assert out.as_dict()["leaderboard"][0]["strategy"] == board[0].name

    def test_duplicate_arms_rejected(self):
        m = _measurer()
        with pytest.raises(ValueError, match="duplicate"):
            BanditMetaTuner(
                m, SearchSettings(), arms=("random", "random")
            )

    def test_leaderboard_gauges_in_trace_summary(self):
        from repro.obs import Tracer
        from repro.obs.summary import render_summary

        records = []
        tracer = Tracer(sink=records.append)
        ctx = Context(NVIDIA_K40, seed=2, tracer=tracer)
        m = Measurer(ctx, ConvolutionKernel())
        settings = SearchSettings(budget=200, batch=32)
        BanditMetaTuner(m, settings).run(np.random.default_rng(2))
        tracer.close()
        gauges = {}
        for r in records:
            if r.get("type") == "gauges":
                gauges.update(r["values"])
        for arm in ("random", "annealing", "pso", "genetic", "coordinate"):
            assert f"strategy.{arm}.best_ms" in gauges
            assert f"strategy.{arm}.spend_s" in gauges
            assert f"strategy.{arm}.pulls" in gauges
        assert "search.bandit.best_ms" in gauges
        text = render_summary(records)
        assert "strategy leaderboard" in text
        assert "bandit" in text


class TestSearchTuner:
    @pytest.mark.parametrize("strategy", ["random", "bandit"])
    def test_tuning_result_contract(self, strategy):
        spec = ConvolutionKernel()
        ctx = Context(NVIDIA_K40, seed=1)
        tuner = SearchTuner(
            ctx, spec, strategy, SearchSettings(budget=150, batch=30)
        )
        result = tuner.tune(np.random.default_rng(1), model_seed=1)
        assert result.kernel == "convolution"
        assert result.device == "Nvidia K40"
        assert not result.failed
        assert result.n_trained == 0
        assert result.n_stage2 == tuner.outcome.n_measured
        assert result.total_cost_s == ctx.ledger.total_s
        assert 0 < result.evaluated_fraction <= 1
        assert tuner.model is None

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            SearchTuner(Context(NVIDIA_K40, seed=0), ConvolutionKernel(),
                        "simulated-annealing")

    def test_stats_merge_preserves_prior_runs(self):
        spec = ConvolutionKernel()
        ctx = Context(NVIDIA_K40, seed=3)
        m = Measurer(ctx, spec)
        m.measure(0)
        before = m.stats.n_requested
        tuner = SearchTuner(
            ctx, spec, "random", SearchSettings(budget=50, batch=50),
            measurer=m,
        )
        tuner.tune(np.random.default_rng(3))
        assert m.stats.n_requested == before + 50

    def test_matches_plain_run_search(self):
        """The adapter adds accounting, not behaviour: same rng, same
        measurements, same pick as a bare run_search."""
        settings = SearchSettings(budget=100, batch=25)
        m1 = _measurer(seed=7)
        out = run_search(
            m1, make_strategy("pso", m1, settings),
            np.random.default_rng(7), settings,
        )
        tuner = SearchTuner(
            Context(NVIDIA_K40, seed=7), ConvolutionKernel(), "pso", settings
        )
        result = tuner.tune(np.random.default_rng(7))
        assert result.best_index == out.best_index
        assert float.hex(result.best_time_s) == float.hex(out.best_time_s)


class TestLegacyWrapperParity:
    """random_search / coordinate_descent kept their exact draws when they
    moved onto the strategy interface."""

    def test_random_search_matches_plain_sampling(self):
        from repro.core.search import random_search

        spec = ConvolutionKernel()
        m = _measurer(seed=10, spec=spec)
        ms = random_search(m, 200, np.random.default_rng(10))
        want = spec.space.sample_indices(200, np.random.default_rng(10))
        got = np.sort(np.concatenate([ms.indices, ms.invalid_indices]))
        assert np.array_equal(got, np.sort(want))

    def test_small_space_budget_cap(self):
        from repro.core.search import random_search

        small = ConvolutionKernel(ConvolutionProblem(64, 64, 5))
        m = Measurer(Context(NVIDIA_K40, seed=1), small)
        ms = random_search(m, 10**9, np.random.default_rng(0))
        assert ms.n_valid + ms.n_invalid == small.space.size

    def test_choices_cover_zoo_plus_bandit(self):
        assert set(STRATEGY_CHOICES) == set(STRATEGIES) | {"bandit"}
