"""Tests for the terminal figure renderer."""

import math

import pytest

from repro.experiments.ascii_plot import bar_chart, line_plot, scatter_plot


class TestLinePlot:
    def test_renders_all_series_glyphs(self):
        txt = line_plot(
            [1, 2, 3], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]}, title="t"
        )
        assert "t" in txt
        assert "o=a" in txt and "x=b" in txt
        assert "o" in txt and "x" in txt

    def test_skips_nan_points(self):
        txt = line_plot([1, 2, 3], {"a": [1.0, float("nan"), 3.0]})
        assert txt.count("o") >= 2  # legend glyph + >=2 points... at least renders

    def test_log_x(self):
        txt = line_plot([100, 1000, 4000], {"err": [0.3, 0.2, 0.1]}, logx=True)
        assert "100" in txt

    def test_constant_series_ok(self):
        txt = line_plot([1, 2], {"a": [5.0, 5.0]})
        assert "5" in txt

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot([1], {})
        with pytest.raises(ValueError):
            line_plot([1], {"a": [float("nan")]})

    def test_extremes_land_on_border_rows(self):
        txt = line_plot([0, 1], {"a": [0.0, 10.0]}, width=20, height=5)
        rows = [l for l in txt.splitlines() if "|" in l]
        assert "o" in rows[0]  # max on the top row
        assert "o" in rows[-1]  # min on the bottom row


class TestScatterPlot:
    def test_diagonal_and_points(self):
        txt = scatter_plot([1.0, 10.0, 100.0], [1.1, 9.0, 120.0])
        assert "." in txt and "o" in txt
        assert "y=x" in txt

    def test_perfect_predictions_sit_on_diagonal(self):
        # With pred == actual every 'o' replaces a diagonal cell.
        txt = scatter_plot([1.0, 10.0, 100.0], [1.0, 10.0, 100.0], width=30, height=30)
        body = [l for l in txt.splitlines() if "|" in l]
        for line in body:
            for i, ch in enumerate(line):
                if ch == "o":
                    break
        assert sum(l.count("o") for l in body) >= 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scatter_plot([0.0], [1.0])
        with pytest.raises(ValueError):
            scatter_plot([float("nan")], [float("nan")])


class TestBarChart:
    def test_bars_scale_with_values(self):
        txt = bar_chart(["a", "b"], [1.0, 2.0], width=20)
        lines = txt.splitlines()
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_missing_marker(self):
        txt = bar_chart(["a", "b"], [1.0, float("nan")])
        assert "missing" in txt

    def test_alignment(self):
        txt = bar_chart(["short", "a much longer label"], [1.0, 2.0])
        lines = txt.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [float("nan")])
