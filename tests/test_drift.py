"""Drift simulator, zero-drift equivalence, CUSUM detector, RNG streams.

Four concerns in one file because they gate each other:

* the drift schedule's semantics (onset, ramp, regimes, quirks) and its
  keyed-hash determinism;
* the zero-drift equivalence guarantee — ``drift="none"`` replays the
  recorded pre-drift fixtures bit for bit, and serial == batch holds
  *under* drift;
* the CUSUM detector's behaviour: calibration, detection latency, and a
  seeded false-positive bound on quiet streams;
* the ``MeasurementModel`` RNG-stream fixes this PR rode in with:
  ``observe`` / ``observe_many`` / ``best_of`` validate identically and
  draw identically (nothing at sigma 0, stream-equivalent otherwise).
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.core.drift import CusumDetector, DetectorSettings
from repro.core.measure import Measurer
from repro.kernels import get_benchmark
from repro.runtime import Context
from repro.simulator import NVIDIA_K40
from repro.simulator.drift import (
    DRIFT_PROFILES,
    DriftModel,
    DriftProfile,
    get_drift_profile,
    make_drift,
)
from repro.simulator.noise import MeasurementModel

FIXTURES = json.loads(
    (Path(__file__).parent / "data" / "zero_fault_fixtures.json").read_text()
)


# -- profiles and coercion -----------------------------------------------------


def test_named_profiles_parse_and_classify():
    assert not DRIFT_PROFILES["none"].any_drift
    assert DRIFT_PROFILES["thermal-throttle"].any_drift
    assert DRIFT_PROFILES["noisy-neighbor"].any_drift
    for name in DRIFT_PROFILES:
        assert get_drift_profile(name) == DRIFT_PROFILES[name]


def test_profile_override_parsing():
    p = get_drift_profile("thermal-throttle:onset_s=450,ramp_s=60,seed=3")
    assert p.onset_s == 450.0
    assert p.ramp_s == 60.0
    assert p.seed == 3
    assert p.throttle_factor == DRIFT_PROFILES["thermal-throttle"].throttle_factor


@pytest.mark.parametrize("spec", [
    "unknown-profile",
    "thermal-throttle:bogus_field=1",
    "thermal-throttle:onset_s",
])
def test_bad_profile_specs_rejected(spec):
    with pytest.raises(ValueError):
        get_drift_profile(spec)


@pytest.mark.parametrize("kwargs", [
    {"onset_s": -1.0},
    {"ramp_s": -0.5},
    {"regime_duration_s": -1.0},
    {"throttle_factor": 0.0},
    {"contention_min": 0.0},
    {"contention_min": 1.5, "contention_max": 1.2},
    {"contention_sigma": -0.1},
])
def test_profile_validation(kwargs):
    with pytest.raises(ValueError):
        DriftProfile(**kwargs)


def test_make_drift_coercion():
    assert make_drift(None) is None
    assert make_drift("none") is None
    assert make_drift(DriftProfile()) is None  # inert profile -> no model
    model = make_drift("thermal-throttle")
    assert isinstance(model, DriftModel)
    assert make_drift(model) is model
    with pytest.raises(TypeError):
        make_drift(42)


# -- schedule semantics --------------------------------------------------------


def test_throttle_ramp_semantics():
    m = DriftModel(DriftProfile(onset_s=100.0, throttle_factor=2.0, ramp_s=50.0))
    key = ("k", (1,))
    assert m.factor_at(0.0, *key) == 1.0
    assert m.factor_at(99.999, *key) == 1.0  # exactly 1.0 pre-onset
    assert m.factor_at(125.0, *key) == pytest.approx(1.5)
    assert m.factor_at(150.0, *key) == 2.0
    assert m.factor_at(1e6, *key) == 2.0  # holds after the ramp
    # Monotone along the ramp.
    ts = np.linspace(100.0, 150.0, 11)
    vals = [m.factor_at(t, *key) for t in ts]
    assert all(b >= a for a, b in zip(vals, vals[1:]))


def test_step_throttle_when_ramp_zero():
    m = DriftModel(DriftProfile(onset_s=10.0, throttle_factor=1.4, ramp_s=0.0))
    assert m.factor_at(9.999, "k", (1,)) == 1.0
    assert m.factor_at(10.0, "k", (1,)) == 1.4


def test_regime_boundaries_and_determinism():
    p = DriftProfile(
        seed=5, onset_s=100.0, regime_duration_s=50.0,
        contention_min=1.1, contention_max=1.6, contention_sigma=0.05,
    )
    m = DriftModel(p)
    assert m.regime_at(0.0) == 0
    assert m.regime_at(99.9) == 0
    assert m.regime_at(100.0) == 1
    assert m.regime_at(149.9) == 1
    assert m.regime_at(150.0) == 2
    # Per-regime globals are deterministic, within the band, and differ
    # across regimes (keyed on the regime index).
    g1, g2 = m.regime_global(1), m.regime_global(2)
    assert 1.1 <= g1 <= 1.6 and 1.1 <= g2 <= 1.6
    assert g1 != g2
    assert DriftModel(p).regime_global(1) == g1
    # Quirks are per-config, deterministic, and reorder (differ per config).
    q_a = m.regime_quirk(1, "conv", (1, 2))
    q_b = m.regime_quirk(1, "conv", (3, 4))
    assert q_a != q_b
    assert DriftModel(p).regime_quirk(1, "conv", (1, 2)) == q_a
    # A different profile seed replays a different history.
    m_other = DriftModel(dataclasses.replace(p, seed=6))
    assert m_other.regime_global(1) != g1


def test_factors_at_matches_scalar_factor():
    p = get_drift_profile("noisy-neighbor:seed=2")
    m = DriftModel(p)
    t = p.onset_s + 10.0
    tuples = [(1, 2), (3, 4), (5, 6)]
    batch = m.factors_at(t, "conv", tuples)
    for ct, f in zip(tuples, batch):
        assert f == m.factor_at(t, "conv", ct)


def test_idle_clock_advances_drift_without_ledger_spend():
    ctx = Context(
        NVIDIA_K40, seed=1,
        drift="thermal-throttle:onset_s=50,ramp_s=0,throttle_factor=2.0",
    )
    assert ctx.drift.time_of(ctx.ledger) == ctx.ledger.total_s
    ctx.drift.advance(60.0)
    assert ctx.drift.time_of(ctx.ledger) == ctx.ledger.total_s + 60.0
    assert ctx.drift.factor_at(
        ctx.drift.time_of(ctx.ledger), "k", (1,)
    ) == 2.0
    with pytest.raises(ValueError):
        ctx.drift.advance(-1.0)


# -- zero-drift equivalence ----------------------------------------------------


def _ledger_hex(ledger) -> dict:
    return {
        "compile_s": float.hex(ledger.compile_s),
        "run_s": float.hex(ledger.run_s),
        "failed_s": float.hex(ledger.failed_s),
        "total_s": float.hex(ledger.total_s),
    }


def _rng_word(ctx) -> str:
    return str(ctx.measurement.rng.bit_generator.state["state"]["state"])


@pytest.mark.parametrize("kernel", sorted(FIXTURES["kernels"]))
def test_zero_drift_bit_identical_to_fixtures(kernel):
    """``drift="none"`` replays the pre-drift recordings exactly —
    measured values, ledger, and the RNG stream position."""
    want = FIXTURES["kernels"][kernel]["serial"]
    spec = get_benchmark(kernel)
    ctx = Context(NVIDIA_K40, seed=123, drift="none")
    assert ctx.drift is None  # the same code path, literally
    measurer = Measurer(ctx, spec)
    indices = spec.space.sample_indices(40, np.random.default_rng(42))
    values = [measurer.measure(int(i)) for i in indices]
    got = [None if v is None else float.hex(v) for v in values]
    assert got == want["values"]
    assert _ledger_hex(ctx.ledger) == want["ledger"]
    assert _rng_word(ctx) == want["rng_state"]


def test_serial_equals_batch_under_drift():
    """Attaching drift degrades batches to the serial resilient loop, so
    batch results equal a fresh serial context measuring the same list."""
    spec = get_benchmark("convolution")
    profile = "noisy-neighbor:onset_s=0.1,seed=9"
    indices = spec.space.sample_indices(25, np.random.default_rng(3))

    ctx_a = Context(NVIDIA_K40, seed=55, drift=profile)
    serial = [Measurer(ctx_a, spec).measure(int(i)) for i in indices]

    ctx_b = Context(NVIDIA_K40, seed=55, drift=profile)
    ms = Measurer(ctx_b, spec).measure_batch(indices)
    batch = dict(zip([int(i) for i in ms.indices], ms.times_s))

    for idx, v in zip([int(i) for i in indices], serial):
        if v is None:
            assert idx not in batch
        else:
            assert float.hex(batch[idx]) == float.hex(v)
    assert _ledger_hex(ctx_a.ledger) == _ledger_hex(ctx_b.ledger)
    assert _rng_word(ctx_a) == _rng_word(ctx_b)


def test_cached_true_times_see_the_drifted_present():
    """The measurer caches *base* true times; a re-measure after the
    clock has advanced must reflect the machine as it is now."""
    spec = get_benchmark("convolution")
    ctx = Context(
        NVIDIA_K40, seed=0,
        drift="thermal-throttle:onset_s=1000,ramp_s=0,throttle_factor=2.0",
    )
    # Zero the observation noise so the factor shows up exactly.
    ctx.measurement.device = dataclasses.replace(
        NVIDIA_K40, timing_noise_sigma=0.0
    )
    measurer = Measurer(ctx, spec, repeats=1)
    idx = int(spec.space.sample_indices(1, np.random.default_rng(1))[0])
    before = measurer.measure(idx)
    ctx.drift.advance(2000.0)  # cross the throttle step
    after = measurer.measure(idx)  # cache hit: no rebuild, fresh factor
    assert after == pytest.approx(2.0 * before)


# -- MeasurementModel RNG streams (the noise.py fixes) -------------------------


def _sigma0_model():
    dev = dataclasses.replace(NVIDIA_K40, timing_noise_sigma=0.0)
    return MeasurementModel(dev, np.random.default_rng(77))


def test_sigma_zero_draws_nothing_any_entry_point():
    m = _sigma0_model()
    state0 = m.rng.bit_generator.state["state"]["state"]
    assert m.observe(2.0) == 2.0
    assert list(m.observe_many(2.0, 5)) == [2.0] * 5
    assert m.best_of(2.0, 3) == 2.0
    assert m.rng.bit_generator.state["state"]["state"] == state0


def test_observe_many_validates_like_observe():
    m = _sigma0_model()
    noisy = MeasurementModel(NVIDIA_K40, np.random.default_rng(1))
    for model in (m, noisy):
        with pytest.raises(ValueError):
            model.observe(0.0)
        with pytest.raises(ValueError):
            model.observe_many(0.0, 3)
        with pytest.raises(ValueError):
            model.observe_many(-1.0, 3)
        with pytest.raises(ValueError):
            model.best_of(0.0)
        with pytest.raises(ValueError):
            model.observe_many(1.0, 0)
    # Validation must not consume any randomness.
    s0 = noisy.rng.bit_generator.state["state"]["state"]
    assert noisy.rng.bit_generator.state["state"]["state"] == s0


def test_observe_loop_stream_equivalent_to_observe_many():
    """n scalar draws == one vectorized draw of n: same values, same
    final generator state (numpy's standard_normal guarantee, pinned
    here because the batch engine's accounting depends on it)."""
    a = MeasurementModel(NVIDIA_K40, np.random.default_rng(123))
    b = MeasurementModel(NVIDIA_K40, np.random.default_rng(123))
    loop = [a.observe(3.0e-4) for _ in range(7)]
    many = b.observe_many(3.0e-4, 7)
    assert [float.hex(v) for v in loop] == [float.hex(float(v)) for v in many]
    assert (
        a.rng.bit_generator.state["state"]["state"]
        == b.rng.bit_generator.state["state"]["state"]
    )


# -- CUSUM detector ------------------------------------------------------------


def test_detector_settings_validation():
    with pytest.raises(ValueError):
        DetectorSettings(slack_k=-0.1)
    with pytest.raises(ValueError):
        DetectorSettings(threshold_h=0.0)
    with pytest.raises(ValueError):
        DetectorSettings(calibration=1)
    with pytest.raises(ValueError):
        DetectorSettings(max_z=0.5, slack_k=1.0)
    with pytest.raises(ValueError):
        DetectorSettings(min_std=0.0)


def test_detector_rejects_nonpositive_times():
    det = CusumDetector()
    with pytest.raises(ValueError):
        det.update(0.0, 1.0)
    with pytest.raises(ValueError):
        det.update(1.0, -1.0)


def test_detector_calibrates_then_detects_shift():
    settings = DetectorSettings(calibration=20)
    det = CusumDetector(settings)
    rng = np.random.default_rng(0)
    pred = 1e-3
    # Quiet stream: lognormal noise around a biased prediction (the
    # detector must absorb the bias during calibration).
    bias = 1.2
    for _ in range(settings.calibration):
        assert det.update(pred, pred * bias * math.exp(0.02 * rng.standard_normal())) is False
    assert det.armed
    # Shift the mean by 5 sigma-equivalents; detection within a handful
    # of observations.
    alarmed_after = None
    for i in range(40):
        shifted = pred * bias * 1.15 * math.exp(0.02 * rng.standard_normal())
        if det.update(pred, shifted):
            alarmed_after = i + 1
            break
    assert alarmed_after is not None and alarmed_after <= 15
    assert det.n_alarms == 1
    # Reset recalibrates: not armed, stat cleared, counters survive.
    det.reset()
    assert not det.armed and det.stat == 0.0
    assert det.n_alarms == 1 and det.n_obs > 0


def test_single_outlier_cannot_alarm():
    """One clipped spike moves the statistic by at most max_z - k < h."""
    settings = DetectorSettings(calibration=10)
    det = CusumDetector(settings)
    rng = np.random.default_rng(1)
    for _ in range(settings.calibration):
        det.update(1.0, math.exp(0.05 * rng.standard_normal()))
    assert det.update(1.0, 100.0) is False  # a 100x outlier, once
    assert det.stat <= settings.max_z - settings.slack_k


@pytest.mark.parametrize("seed", range(20))
def test_false_positive_bound_on_quiet_streams(seed):
    """200 quiet observations per seed, 20 seeds: zero alarms.  This is
    the synthetic half of the quiescence gate (the end-to-end half runs
    in test_online.py)."""
    det = CusumDetector(DetectorSettings())
    rng = np.random.default_rng(seed)
    for _ in range(200):
        assert det.update(1.0, 1.1 * math.exp(0.03 * rng.standard_normal())) is False
    assert det.n_alarms == 0
