"""Fault injection and the resilient measurement pipeline.

Everything here runs with a fault profile armed (marker: ``fault``):
injector determinism, retry/backoff/quarantine semantics, the
serial == batch contract under faults, ledger charging rules, graceful
tuner degradation, and the seeded end-to-end acceptance runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.iterative import IterativeSettings, IterativeTuner
from repro.core.measure import MeasurementSet, Measurer, RetryPolicy
from repro.core.tuner import MLAutoTuner, TunerSettings
from repro.kernels import get_benchmark
from repro.runtime import (
    Context,
    DeviceResetError,
    Program,
    TimeoutError,
    TransientError,
)
from repro.simulator import (
    FAULT_PROFILES,
    FaultInjector,
    FaultProfile,
    NVIDIA_K40,
    get_fault_profile,
)
from repro.simulator.faults import HANG, OK, RESET, TRANSIENT, make_injector

pytestmark = pytest.mark.fault

FLAKY = get_fault_profile("flaky-gpu")


def _valid_index(spec, device=NVIDIA_K40, start=0):
    """First statically-valid configuration index of ``spec``."""
    probe = Measurer(Context(device, seed=0), spec)
    for i in range(start, spec.space.size):
        if probe.is_valid(i):
            return i
    raise AssertionError("no valid configuration found")


# -- profiles and the injector -------------------------------------------------


def test_profile_validation():
    with pytest.raises(ValueError):
        FaultProfile(p_transient_build=1.5)
    with pytest.raises(ValueError):
        FaultProfile(p_hang=0.6, p_transient_launch=0.5)  # launch bands > 1
    with pytest.raises(ValueError):
        FaultProfile(p_hang=0.1, hang_duration_s=0.0)
    with pytest.raises(ValueError):
        FaultProfile(p_outlier=0.1, outlier_factor=0.5)


def test_get_fault_profile_overrides():
    p = get_fault_profile("flaky-gpu:seed=3,p_hang=0.04")
    assert p.seed == 3
    assert p.p_hang == 0.04
    # untouched fields keep the named profile's values
    assert p.p_transient_launch == FAULT_PROFILES["flaky-gpu"].p_transient_launch
    with pytest.raises(ValueError):
        get_fault_profile("no-such-rig")
    with pytest.raises(ValueError):
        get_fault_profile("flaky-gpu:not_a_field=1")


def test_make_injector_coercions():
    assert make_injector(None) is None
    assert make_injector(FaultProfile()) is None  # all-zero injects nothing
    assert make_injector("none") is None
    inj = make_injector("flaky-gpu")
    assert isinstance(inj, FaultInjector)
    assert make_injector(inj) is inj
    with pytest.raises(TypeError):
        make_injector(42)


def test_injector_stream_is_deterministic_and_replayable():
    profile = FaultProfile(
        seed=5, p_transient_build=0.3, p_transient_launch=0.3, p_hang=0.1
    )
    key = ("convolution", (1, 2, 3))

    def draw_sequence(inj, n=50):
        return [
            (inj.at_build(key), inj.at_launch(key)) for _ in range(n)
        ]

    a = draw_sequence(FaultInjector(profile))
    b = draw_sequence(FaultInjector(profile))
    assert a == b  # same seed -> identical fault history
    kinds = {d for pair in a for d in pair}
    assert TRANSIENT in kinds and OK in kinds  # both bands actually hit

    inj = FaultInjector(profile)
    first = draw_sequence(inj, 20)
    inj.reset_state()
    assert draw_sequence(inj, 20) == first  # reset replays from scratch
    assert FaultInjector(FaultProfile(seed=6, p_transient_build=0.3)).at_build(
        key
    ) in (OK, TRANSIENT)


def test_launch_bands_are_mutually_exclusive_per_attempt():
    profile = FaultProfile(
        seed=1, p_device_reset=0.2, p_hang=0.3, p_transient_launch=0.4
    )
    inj = FaultInjector(profile)
    key = ("k", (0,))
    seen = [inj.at_launch(key) for _ in range(400)]
    assert {RESET, HANG, TRANSIENT, OK} == set(seen)
    total = sum(inj.injected[k] for k in ("reset", "hang", "transient_launch"))
    assert total == sum(1 for s in seen if s != OK)


# -- runtime surfaces ----------------------------------------------------------


def test_build_transient_raises_and_charges_failed_bucket():
    spec = get_benchmark("convolution")
    idx = _valid_index(spec)
    profile = FaultProfile(seed=0, p_transient_build=1.0)
    ctx = Context(NVIDIA_K40, seed=0, faults=profile)
    with pytest.raises(TransientError) as err:
        Program(ctx, spec, spec.space[idx]).build()
    assert "build" in str(err.value)
    assert ctx.ledger.failed_s > 0
    assert ctx.ledger.compile_s == 0.0  # failed before the compile charge


def test_hang_charges_min_of_watchdog_and_timeout():
    spec = get_benchmark("convolution")
    idx = _valid_index(spec)
    profile = FaultProfile(seed=0, p_hang=1.0, hang_duration_s=8.0)
    ctx = Context(NVIDIA_K40, seed=0, faults=profile)
    kernel = Program(ctx, spec, spec.space[idx]).build()
    failed0 = ctx.ledger.failed_s
    with pytest.raises(TimeoutError) as err:
        kernel.enqueue(timeout_s=2.0)
    assert err.value.waited_s == 2.0  # caller watchdog shorter than the hang
    assert ctx.ledger.failed_s - failed0 == pytest.approx(2.0)


def test_device_reset_charges_and_clears_compile_cache():
    spec = get_benchmark("convolution")
    idx = _valid_index(spec)
    profile = FaultProfile(seed=0, p_device_reset=1.0, reset_cost_s=2.0)
    ctx = Context(NVIDIA_K40, seed=0, faults=profile)
    measurer = Measurer(
        ctx, spec, retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0)
    )
    value, outcome = measurer.measure_outcome(idx)
    assert outcome == "quarantined" and value is None
    assert measurer._cache == {}  # reset wiped probed binaries
    assert measurer.stats.n_transient == 2
    assert ctx.ledger.failed_s >= 2 * 2.0


# -- retry / quarantine semantics ---------------------------------------------


def test_always_failing_config_is_quarantined_once():
    spec = get_benchmark("convolution")
    idx = _valid_index(spec)
    profile = FaultProfile(seed=0, p_transient_launch=1.0)
    ctx = Context(NVIDIA_K40, seed=0, faults=profile)
    policy = RetryPolicy(max_attempts=3, backoff_base_s=0.5)
    measurer = Measurer(ctx, spec, retry=policy)
    value, outcome = measurer.measure_outcome(idx)
    assert (value, outcome) == (None, "quarantined")
    s = measurer.stats
    assert s.n_transient == 3  # every attempt failed
    assert s.n_retries == 2  # backoff between attempts only
    assert s.n_quarantined == 1
    assert idx in measurer.quarantine
    # Exponential backoff charged to the dedicated ledger bucket.
    assert ctx.ledger.retry_s == pytest.approx(0.5 + 1.0)
    # Quarantine short-circuits: a re-ask burns nothing further.
    total0 = ctx.ledger.total_s
    assert measurer.measure_outcome(idx) == (None, "quarantined")
    assert ctx.ledger.total_s == total0
    assert measurer.stats.n_quarantined == 1
    # Quarantined is missing data, not invalid.
    assert measurer.stats.n_invalid == 0
    assert s.failure_breakdown() == {
        "transient": 3, "retries": 2, "quarantined": 1,
    }


def test_config_budget_quarantines_with_attempts_left():
    spec = get_benchmark("convolution")
    idx = _valid_index(spec)
    profile = FaultProfile(seed=0, p_hang=1.0, hang_duration_s=8.0)
    ctx = Context(NVIDIA_K40, seed=0, faults=profile)
    policy = RetryPolicy(
        max_attempts=100, launch_timeout_s=2.0, config_budget_s=5.0
    )
    measurer = Measurer(ctx, spec, retry=policy)
    assert measurer.measure_outcome(idx)[1] == "quarantined"
    # 2 s per watchdog-killed attempt; budget 5 s stops long before 100.
    assert measurer.stats.n_timeouts < 100
    assert ctx.ledger.total_s < 30.0


def test_retry_succeeds_and_returns_fault_free_value():
    """A transient that clears on retry yields *exactly* the measurement a
    fault-free run produces: the fault stream never touches the noise RNG."""
    spec = get_benchmark("convolution")
    idx = _valid_index(spec)

    clean = Measurer(Context(NVIDIA_K40, seed=9), spec)
    want = clean.measure(idx)

    # Find a seed whose first launch roll fails but a later one succeeds.
    for seed in range(50):
        profile = FaultProfile(seed=seed, p_transient_launch=0.6)
        ctx = Context(NVIDIA_K40, seed=9, faults=profile)
        measurer = Measurer(ctx, spec, retry=RetryPolicy(max_attempts=6))
        value, outcome = measurer.measure_outcome(idx)
        if outcome == "ok" and measurer.stats.n_transient > 0:
            assert value == want
            assert ctx.ledger.retry_s > 0
            return
    raise AssertionError("no seed produced a fail-then-succeed history")


def test_retry_path_is_deterministic():
    spec = get_benchmark("convolution")
    indices = spec.space.sample_indices(30, np.random.default_rng(3))

    def run():
        ctx = Context(NVIDIA_K40, seed=4, faults=get_fault_profile("unstable-driver"))
        m = Measurer(ctx, spec)
        ms = m.measure_batch(indices)
        return (
            [int(i) for i in ms.indices],
            [float.hex(float(t)) for t in ms.times_s],
            sorted(m.quarantine),
            m.stats.failure_breakdown(),
            float.hex(ctx.ledger.total_s),
        )

    assert run() == run()  # same seed + profile -> same retries/quarantines


def test_serial_equals_batch_under_faults():
    spec = get_benchmark("raycasting")
    indices = [int(i) for i in spec.space.sample_indices(30, np.random.default_rng(8))]

    ctx_s = Context(NVIDIA_K40, seed=2, faults=FLAKY)
    serial = Measurer(ctx_s, spec)
    got = {}
    for i in indices:
        got[i] = serial.measure_outcome(i)

    ctx_b = Context(NVIDIA_K40, seed=2, faults=FLAKY)
    batch = Measurer(ctx_b, spec)
    ms = batch.measure_batch(indices)

    ok = {int(i): float(t) for i, t in zip(ms.indices, ms.times_s)}
    for i in indices:
        value, outcome = got[i]
        if outcome == "ok":
            assert ok.get(i) == value
        elif outcome == "quarantined":
            assert i in set(int(q) for q in ms.quarantined_indices)
        else:
            assert i in set(int(q) for q in ms.invalid_indices)
    assert serial.quarantine == batch.quarantine
    assert float.hex(ctx_s.ledger.total_s) == float.hex(ctx_b.ledger.total_s)
    assert serial.stats.failure_breakdown() == batch.stats.failure_breakdown()


def test_faults_do_not_perturb_measured_values():
    """Acceptance property behind the pick-match bar: non-outlier values
    measured under faults equal the fault-free values bit for bit."""
    spec = get_benchmark("stereo")
    indices = [int(i) for i in spec.space.sample_indices(40, np.random.default_rng(5))]

    clean = Measurer(Context(NVIDIA_K40, seed=3), spec)
    want = {i: clean.measure(i) for i in indices}

    profile = FaultProfile(  # flaky-gpu minus the outlier spikes
        seed=0, p_transient_build=0.03, p_transient_launch=0.05,
        p_hang=0.01, p_device_reset=0.002,
    )
    ctx = Context(NVIDIA_K40, seed=3, faults=profile)
    faulty = Measurer(ctx, spec)
    for i in indices:
        value, outcome = faulty.measure_outcome(i)
        if outcome != "quarantined":
            assert value == want[i], i


# -- ledger regression: validity checks must be free ---------------------------


def test_is_valid_charges_nothing(tmp_path):
    spec = get_benchmark("convolution")
    ctx = Context(NVIDIA_K40, seed=0)
    measurer = Measurer(ctx, spec)
    rng_word0 = str(ctx.measurement.rng.bit_generator.state["state"]["state"])
    indices = [int(i) for i in spec.space.sample_indices(200, np.random.default_rng(0))]
    verdicts = [measurer.is_valid(i) for i in indices]
    assert True in verdicts and False in verdicts
    # No compile, no launch, no failure cost, no noise draw — ever.
    assert ctx.ledger.total_s == 0.0
    assert str(ctx.measurement.rng.bit_generator.state["state"]["state"]) == rng_word0
    # And the verdicts agree with what a real probe concludes.
    for i in (indices[verdicts.index(True)], indices[verdicts.index(False)]):
        assert (measurer.measure(i) is not None) == measurer.is_valid(i)


def test_is_valid_agrees_with_probe_cache():
    spec = get_benchmark("convolution")
    measurer = Measurer(Context(NVIDIA_K40, seed=0), spec)
    idx = _valid_index(spec)
    measurer.measure(idx)
    assert measurer.is_valid(idx) is True  # served from the probe cache


# -- graceful tuner degradation ------------------------------------------------


def test_stage2_exhausted_falls_back_to_stage1_best():
    spec = get_benchmark("convolution")
    ctx = Context(NVIDIA_K40, seed=7)
    tuner = MLAutoTuner(
        ctx, spec, TunerSettings(n_train=60, m_candidates=10, k_bag=11)
    )
    # Force the §7 failure mode deterministically: every stage-two
    # candidate comes back without a valid measurement.
    tuner.evaluate_candidates = lambda candidates: MeasurementSet(
        indices=np.empty(0, dtype=np.int64),
        times_s=np.empty(0),
        invalid_indices=np.asarray(candidates, dtype=np.int64),
    )
    result = tuner.tune(np.random.default_rng(7), model_seed=7)
    assert not result.failed  # used to be best_index == -1
    assert result.degraded and result.degraded_reason == "stage2_exhausted"
    assert result.failure_breakdown["stage2_fallback"] == 1
    train = tuner.training_set
    assert (result.best_index, result.best_time_s) == train.best()


def test_stage1_starvation_replenishes_instead_of_raising():
    spec = get_benchmark("convolution")
    ctx = Context(NVIDIA_K40, seed=13)
    settings = TunerSettings(
        n_train=12, m_candidates=10, k_bag=11, replenish_rounds=6
    )
    tuner = MLAutoTuner(ctx, spec, settings)
    rng = np.random.default_rng(13)
    train = tuner.collect_training_data(rng)
    assert tuner.replenish_rounds_used > 0  # 12 draws can't yield 11 valid
    assert train.n_valid >= 11
    tuner.train_model(13)  # used to raise "increase n_train"


def test_stage1_starvation_still_raises_when_replenish_disabled():
    spec = get_benchmark("convolution")
    ctx = Context(NVIDIA_K40, seed=13)
    tuner = MLAutoTuner(
        ctx,
        spec,
        TunerSettings(n_train=12, m_candidates=10, k_bag=11, replenish_rounds=0),
    )
    tuner.collect_training_data(np.random.default_rng(13))
    if tuner.training_set.n_valid < 11:
        with pytest.raises(RuntimeError, match="replenish"):
            tuner.train_model(13)


def test_no_valid_measurements_is_a_degraded_failure():
    spec = get_benchmark("convolution")
    profile = FaultProfile(seed=0, p_transient_launch=1.0)  # nothing survives
    ctx = Context(NVIDIA_K40, seed=7, faults=profile)
    measurer = Measurer(
        ctx, spec, retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0)
    )
    tuner = MLAutoTuner(
        ctx,
        spec,
        TunerSettings(n_train=15, m_candidates=5, k_bag=11, replenish_rounds=1),
        measurer=measurer,
    )
    with pytest.raises(RuntimeError):
        # Even replenishment cannot train a model on a rig where every
        # launch fails; the error names the knobs that could help.
        tuner.tune(np.random.default_rng(7), model_seed=7)
    assert measurer.stats.n_quarantined > 0


# -- end-to-end acceptance -----------------------------------------------------


@pytest.mark.parametrize("kernel", ["convolution", "raycasting", "stereo"])
def test_flaky_gpu_tune_completes_with_breakdown(kernel):
    spec = get_benchmark(kernel)
    ctx = Context(NVIDIA_K40, seed=7, faults="flaky-gpu")
    tuner = MLAutoTuner(
        ctx, spec, TunerSettings(n_train=600, m_candidates=60, k_bag=11)
    )
    result = tuner.tune(np.random.default_rng(7), model_seed=7)
    assert not result.failed
    assert result.failure_breakdown  # the run reports what it survived
    assert set(result.failure_breakdown) <= {
        "transient", "timeouts", "retries", "quarantined",
        "stage1_replenish_rounds", "stage2_fallback",
    }
    s = tuner.measurer.stats
    assert s.n_transient + s.n_timeouts > 0


def test_flaky_gpu_iterative_completes():
    spec = get_benchmark("convolution")
    ctx = Context(NVIDIA_K40, seed=11, faults="flaky-gpu")
    tuner = IterativeTuner(
        ctx, spec, IterativeSettings(total_budget=300, rounds=2)
    )
    result = tuner.tune(np.random.default_rng(11), model_seed=11)
    assert not result.failed
    assert result.failure_breakdown


@pytest.mark.slow
def test_flaky_pick_matches_fault_free_pick_in_80pct_of_runs():
    """The acceptance bar: under the seeded flaky-gpu profile the
    stage-two pick must equal the fault-free pick in >= 80% of 20 runs."""
    spec = get_benchmark("convolution")
    settings = TunerSettings(n_train=600, m_candidates=60, k_bag=11)
    matches = 0
    for seed in range(20):
        clean = MLAutoTuner(
            Context(NVIDIA_K40, seed=seed), spec, settings
        ).tune(np.random.default_rng(seed), model_seed=seed)
        flaky = MLAutoTuner(
            Context(NVIDIA_K40, seed=seed, faults=f"flaky-gpu:seed={seed}"),
            spec,
            settings,
        ).tune(np.random.default_rng(seed), model_seed=seed)
        assert not flaky.failed
        matches += int(flaky.best_index == clean.best_index)
    assert matches >= 16, f"only {matches}/20 picks matched"


def test_campaign_grid_inline_with_faults(tmp_path):
    from repro.core.campaign import run_campaign_grid

    report = run_campaign_grid(
        [get_benchmark("convolution")],
        ["nvidia", "intel"],
        settings=TunerSettings(n_train=200, m_candidates=20, k_bag=11),
        max_workers=1,
        seed=5,
        faults=FLAKY,
    )
    assert len(report.cells) == 2
    total = report.total_stats
    assert total.n_faults > 0
    assert "faults survived" in report.report()


def test_cli_tune_with_faults(capsys):
    from repro.cli import main

    rc = main([
        "tune", "-k", "convolution", "-d", "nvidia",
        "-n", "600", "-m", "60", "--seed", "7", "--faults", "flaky-gpu",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "failure breakdown" in out
    assert "retries" in out


# -- backoff cap ---------------------------------------------------------------


def test_backoff_schedule_is_capped():
    policy = RetryPolicy(
        backoff_base_s=1.0, backoff_multiplier=10.0, backoff_max_s=3.0
    )
    assert policy.backoff_s(1) == 1.0
    assert policy.backoff_s(2) == 3.0  # 10.0 uncapped
    assert policy.backoff_s(6) == 3.0  # 1e5 uncapped


def test_backoff_cap_below_base_rejected():
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base_s=2.0, backoff_max_s=1.0)


def test_charged_backoff_respects_cap():
    """Regression: ``backoff_s`` grew without bound, so a transient streak
    could charge one enormous sleep to ``retry_s``.  The charged total must
    follow the capped schedule exactly."""
    spec = get_benchmark("convolution")
    idx = _valid_index(spec)
    profile = FaultProfile(seed=0, p_transient_launch=1.0)
    ctx = Context(NVIDIA_K40, seed=0, faults=profile)
    policy = RetryPolicy(
        max_attempts=5,
        backoff_base_s=1.0,
        backoff_multiplier=4.0,
        backoff_max_s=2.0,
        config_budget_s=1000.0,
    )
    measurer = Measurer(ctx, spec, retry=policy)
    assert measurer.measure_outcome(idx) == (None, "quarantined")
    # Backoffs after attempts 1-4: min(1,2), min(4,2), min(16,2), min(64,2).
    assert ctx.ledger.retry_s == pytest.approx(1.0 + 2.0 + 2.0 + 2.0)
