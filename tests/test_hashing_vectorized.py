"""Scalar-vs-vector parity for the keyed-hash API (splitmix64).

The wave-based resilient batch engine precomputes fault rolls and drift
quirks for whole configuration batches with the array-in/array-out
helpers in :mod:`repro.simulator.hashing`.  Bit-identity with the serial
resilient loop rests on one invariant: **every vectorized draw equals
the scalar draw for the same key, bit for bit**.  These property tests
pin that invariant at each layer — the raw primitives, then the
:class:`FaultInjector` and :class:`DriftModel` batch entry points built
on them.
"""

import numpy as np
import pytest

from repro.simulator.drift import DriftModel, get_drift_profile
from repro.simulator.faults import FAULT_PROFILES, FaultInjector
from repro.simulator.hashing import (
    fold64,
    fold64_many,
    key64,
    keyed_normal,
    keyed_normal_many,
    keyed_uniform,
    keyed_uniform_many,
    pair_key_prefix64,
    part64,
    splitmix64,
    splitmix64_py,
    tuple_keys64,
)


def _random_u64(rng, n):
    return rng.integers(0, 2**64, size=n, dtype=np.uint64)


class TestPrimitiveParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_splitmix64_scalar_vs_vector(self, seed):
        zs = _random_u64(np.random.default_rng(seed), 500)
        vec = splitmix64(zs)
        scal = np.array([splitmix64_py(int(z)) for z in zs], dtype=np.uint64)
        assert (vec == scal).all()

    @pytest.mark.parametrize("seed", range(5))
    def test_fold64_scalar_vs_vector(self, seed):
        rng = np.random.default_rng(seed)
        h = int(rng.integers(0, 2**64, dtype=np.uint64))
        vs = _random_u64(rng, 500)
        vec = fold64_many(h, vs)
        scal = np.array([fold64(h, int(v)) for v in vs], dtype=np.uint64)
        assert (vec == scal).all()

    @pytest.mark.parametrize("seed", range(5))
    def test_keyed_uniform_scalar_vs_vector(self, seed):
        hs = _random_u64(np.random.default_rng(seed), 500)
        vec = keyed_uniform_many(hs)
        scal = np.array([keyed_uniform(int(h)) for h in hs])
        assert (vec == scal).all()
        assert ((vec > 0.0) & (vec < 1.0)).all()

    @pytest.mark.parametrize("seed", range(5))
    def test_keyed_normal_scalar_vs_vector(self, seed):
        hs = _random_u64(np.random.default_rng(seed), 500)
        vec = keyed_normal_many(hs)
        scal = np.array([keyed_normal(int(h)) for h in hs])
        assert (vec == scal).all()
        assert (np.abs(vec) <= 4.0).all()

    def test_keyed_normal_standardish(self):
        hs = _random_u64(np.random.default_rng(0), 20000)
        zs = keyed_normal_many(hs)
        assert abs(zs.mean()) < 0.05
        assert abs(zs.std() - 1.0) < 0.05

    def test_keyed_uniform_uniformish(self):
        hs = _random_u64(np.random.default_rng(1), 20000)
        us = keyed_uniform_many(hs)
        assert abs(us.mean() - 0.5) < 0.02
        hist, _ = np.histogram(us, bins=10, range=(0.0, 1.0))
        assert hist.min() > 1500


class TestKeyStructure:
    def test_key64_matches_fold_chain(self):
        assert key64(7, "fault", "launch") == fold64(
            fold64(fold64(key64(), part64(7)), part64("fault")), part64("launch")
        )

    def test_part64_sensitive_to_structure(self):
        # ("ab", "c") must differ from ("a", "bc"), and nesting matters.
        assert part64(("ab", "c")) != part64(("a", "bc"))
        assert part64((1, (2, 3))) != part64((1, 2, 3))
        assert part64((1, 2)) != part64((2, 1))

    def test_pair_key_prefix_identity(self):
        # part64((first, x)) == fold64(pair_key_prefix64(first), part64(x))
        for first in ("convolution", 3, ("a", 1)):
            for x in (5, "cfg", (8, 16, 1, 2, 0, 1)):
                assert part64((first, x)) == fold64(
                    pair_key_prefix64(first), part64(x)
                )

    @pytest.mark.parametrize("seed", range(3))
    def test_tuple_keys64_matches_scalar_rows(self, seed):
        rng = np.random.default_rng(seed)
        mat = rng.integers(0, 64, size=(200, 6)).astype(np.int64)
        prefix = pair_key_prefix64("conv")
        vec = tuple_keys64(prefix, mat)
        scal = np.array(
            [fold64(prefix, part64(tuple(int(v) for v in row))) for row in mat],
            dtype=np.uint64,
        )
        assert (vec == scal).all()


class TestFaultInjectorParity:
    @pytest.mark.parametrize("profile", ["flaky-gpu", "unstable-driver"])
    def test_peek_matches_roll_per_attempt(self, profile):
        rng = np.random.default_rng(3)
        mat = rng.integers(0, 64, size=(50, 6)).astype(np.int64)
        cts = [tuple(int(v) for v in row) for row in mat]
        for surface in ("build", "launch"):
            inj = FaultInjector(FAULT_PROFILES[profile])
            hashes = inj.config_key_hashes("conv", mat)
            # Vectorized peek first: it must be pure (no counter movement).
            peeked = np.stack(
                [inj.peek_uniforms(surface, hashes, np.full(len(cts), a))
                 for a in range(3)],
                axis=1,
            )
            assert inj.attempts_of(surface, ("conv", cts[0])) == 0
            rolled = np.array(
                [[inj._roll(surface, ("conv", ct)) for _ in range(3)]
                 for ct in cts]
            )
            assert (peeked == rolled).all()
            assert inj.attempts_of(surface, ("conv", cts[0])) == 3

    def test_index_key_hashes_match_outlier_rolls(self):
        inj = FaultInjector(FAULT_PROFILES["noisy-rig"])
        indices = np.array([0, 7, 123, 4096])
        hashes = inj.index_key_hashes("conv", indices)
        peeked = inj.peek_uniforms("outlier", hashes, np.zeros(len(indices)))
        rolled = np.array(
            [inj._roll("outlier", ("conv", int(i))) for i in indices]
        )
        assert (peeked == rolled).all()

    def test_bump_attempts_advances_the_stream(self):
        inj = FaultInjector(FAULT_PROFILES["flaky-gpu"])
        key = ("conv", (1, 2, 3, 4, 0, 1))
        h = inj.config_key_hashes("conv", np.array([[1, 2, 3, 4, 0, 1]]))
        expected = [float(inj.peek_uniforms("launch", h, [a])[0]) for a in range(4)]
        inj.bump_attempts("launch", key, 2)
        assert inj._roll("launch", key) == expected[2]
        assert inj._roll("launch", key) == expected[3]


class TestDriftModelParity:
    def test_regime_quirks_many_matches_scalar(self):
        m = DriftModel(get_drift_profile("noisy-neighbor"))
        rng = np.random.default_rng(5)
        mat = rng.integers(0, 64, size=(80, 6)).astype(np.int64)
        cts = [tuple(int(v) for v in row) for row in mat]
        hashes = DriftModel.quirk_key_hashes("conv", mat)
        for regime in (0, 1, 2, 9):
            vec = m.regime_quirks_many(regime, hashes)
            scal = np.array([m.regime_quirk(regime, "conv", ct) for ct in cts])
            assert (vec == scal).all()

    def test_regime_zero_and_zero_sigma_are_unity(self):
        m = DriftModel(get_drift_profile("noisy-neighbor:contention_sigma=0"))
        hashes = DriftModel.quirk_key_hashes("conv", np.array([[1, 2, 3, 4, 0, 1]]))
        assert (m.regime_quirks_many(3, hashes) == 1.0).all()
        noisy = DriftModel(get_drift_profile("noisy-neighbor"))
        assert (noisy.regime_quirks_many(0, hashes) == 1.0).all()

    def test_regime_global_banded_and_deterministic(self):
        m = DriftModel(get_drift_profile("noisy-neighbor"))
        p = m.profile
        for regime in range(1, 50):
            g = m.regime_global(regime)
            assert p.contention_min <= g <= p.contention_max
            assert g == m.regime_global(regime)
        assert m.regime_global(0) == 1.0
