"""Tests for the tuning daemon: protocol, broker, caches, and the
concurrency contract — coalescing is bit-identical to running alone,
budgets degrade instead of crashing, and backpressure rejects with a
retry hint instead of queueing without bound."""

import json
import threading

import numpy as np
import pytest

from repro import Context, MLAutoTuner, TunerSettings
from repro.core.measure import Measurer
from repro.kernels import get_benchmark
from repro.serve import protocol
from repro.serve.broker import MeasurementBroker
from repro.serve.client import ServerRejected, TuningClient, run_load
from repro.serve.server import ServerThread, TuningServer
from repro.serve.state import CampaignKey, ClientAccount, ResultCache
from repro.simulator.devices import get_device

SMALL = dict(n_train=300, m_candidates=30)


def serial_tune(kernel="convolution", device="nvidia", seed=5, **kw):
    """The CLI `tune` path, verbatim — the bit-identity reference."""
    spec = get_benchmark(kernel)
    ctx = Context(get_device(device), seed=seed)
    settings = TunerSettings(**{**SMALL, **kw})
    tuner = MLAutoTuner(ctx, spec, settings)
    result = tuner.tune(np.random.default_rng(seed), model_seed=seed)
    return result, ctx.ledger


# -- protocol ------------------------------------------------------------------


class TestProtocol:
    def test_round_trip(self):
        line = protocol.encode({"op": "ping", "id": "x"})
        assert protocol.decode(line) == {"op": "ping", "id": "x"}

    def test_rejects_junk(self):
        for bad in [b"", b"not json\n", b"[1, 2]\n", b'{"no": "op"}\n']:
            with pytest.raises(protocol.ProtocolError):
                protocol.decode(bad)

    def test_validate_tune_applies_defaults(self):
        out = protocol.validate_tune({"kernel": "k", "device": "d"})
        assert out["n_train"] == protocol.TUNE_DEFAULTS["n_train"]
        assert out["budget_s"] is None and out["stream"] is False

    def test_validate_tune_rejects_bad_fields(self):
        base = {"kernel": "k", "device": "d"}
        for patch in [
            {"kernel": 3},
            {"n_train": "many"},
            {"n_train": 0},
            {"budget_s": -1.0},
            {"budget_s": True},
            {"faults": 7},
        ]:
            with pytest.raises(protocol.ProtocolError):
                protocol.validate_tune({**base, **patch})

    def test_non_finite_floats_stay_strict_json(self):
        line = protocol.encode({"x": float("nan"), "y": float("inf")})
        assert json.loads(line) == {"x": "nan", "y": "inf"}


# -- broker --------------------------------------------------------------------


class TestBroker:
    def test_batches_through_broker_are_bit_identical(self):
        spec = get_benchmark("convolution")
        rng = np.random.default_rng(0)
        indices = rng.integers(0, spec.space.size, size=60)

        direct = Measurer(Context(get_device("nvidia"), seed=1), spec)
        want = direct.measure_batch(indices)

        with MeasurementBroker() as broker:
            brokered = Measurer(
                Context(get_device("nvidia"), seed=1), spec, batcher=broker
            )
            got = brokered.measure_batch(indices)
            assert broker.stats_snapshot()["submissions"] == 1
        np.testing.assert_array_equal(got.indices, want.indices)
        np.testing.assert_array_equal(got.times_s, want.times_s)
        np.testing.assert_array_equal(got.invalid_indices, want.invalid_indices)

    def test_concurrent_submissions_all_served(self):
        spec = get_benchmark("convolution")
        results = {}
        with MeasurementBroker() as broker:
            def worker(seed):
                m = Measurer(
                    Context(get_device("nvidia"), seed=seed), spec,
                    batcher=broker,
                )
                idx = np.random.default_rng(seed).integers(
                    0, spec.space.size, size=40
                )
                results[seed] = (m.measure_batch(idx), idx)
            threads = [
                threading.Thread(target=worker, args=(s,)) for s in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = broker.stats_snapshot()
        assert len(results) == 6
        assert stats["submissions"] == 6
        # Each equals its own standalone run (serial equivalence survives
        # the shared pump).
        for seed, (got, idx) in results.items():
            m = Measurer(Context(get_device("nvidia"), seed=seed), spec)
            want = m.measure_batch(idx)
            np.testing.assert_array_equal(got.times_s, want.times_s)

    def test_stopped_broker_refuses(self):
        broker = MeasurementBroker().start()
        broker.stop()
        with pytest.raises(RuntimeError):
            broker.submit(None, [])


# -- state ---------------------------------------------------------------------


class TestState:
    def test_result_cache_lru_eviction(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_client_account_budget_clamp(self):
        acct = ClientAccount("c", budget_s=100.0)
        assert acct.effective_budget_s(None) == 100.0
        assert acct.effective_budget_s(40.0) == 40.0
        acct.charge({"run_s": 70.0})
        assert acct.remaining_s() == pytest.approx(30.0)
        assert acct.effective_budget_s(40.0) == pytest.approx(30.0)
        acct.charge({"run_s": 50.0})
        assert acct.exhausted()

    def test_unlimited_account_never_exhausts(self):
        acct = ClientAccount("c")
        acct.charge({"run_s": 1e9})
        assert not acct.exhausted()
        assert acct.effective_budget_s(5.0) == 5.0

    def test_campaign_key_identity(self):
        a = CampaignKey("k", "d", "p", 100, 10, 0)
        assert a == CampaignKey("k", "d", "p", 100, 10, 0)
        assert a != CampaignKey("k", "d", "p", 100, 10, 1)
        assert a != CampaignKey("k", "d", "p", 100, 10, 0, budget_s=5.0)


# -- the daemon ----------------------------------------------------------------


@pytest.fixture(scope="module")
def daemon():
    server = TuningServer(max_pending=4, max_workers=4)
    with ServerThread(server) as port:
        yield server, port


class TestServer:
    def test_ping_stats_and_unknown_op(self, daemon):
        _, port = daemon
        with TuningClient("127.0.0.1", port) as c:
            assert c.ping()
            stats = c.stats()
            assert stats["protocol"] == protocol.PROTOCOL_VERSION
            # Operator-facing backpressure fields: live pump queue depth
            # and the (empty, idle server) per-campaign breakdown list.
            assert stats["broker"]["queue_depth"] == 0
            assert stats["campaigns"] == []
            c.send({"op": "nope", "id": "x"})
            assert c.recv()["type"] == "error"

    def test_stats_reports_inflight_failure_breakdown(self):
        """The stats payload lists each in-flight campaign with its key
        fields, age and the measurer's live ``failure_breakdown()``."""
        from repro.serve.server import _InFlight
        from repro.serve.state import WatchKey

        server = TuningServer()
        key = CampaignKey(
            kernel="convolution", device="nvidia", problem=None,
            n_train=50, m_candidates=10, seed=3, budget_s=None,
            faults="flaky-gpu",
        )
        flight = _InFlight(key)
        ctx = Context(get_device("nvidia"), seed=3, faults="flaky-gpu")
        m = Measurer(ctx, get_benchmark("convolution"))
        m.stats.n_transient = 4
        m.stats.n_retries = 2
        flight.measurer = m
        server.inflight[key] = flight
        # A watch campaign whose measurer has not registered yet.
        wkey = WatchKey(serial=1, kernel="convolution", device="nvidia",
                        n_train=50, m_candidates=10, seed=3, steps=5,
                        drift="thermal-throttle", faults=None)
        server.inflight[wkey] = _InFlight(wkey)

        stats = server.stats()
        entries = stats["campaigns"]
        assert len(entries) == 2
        tune_entry = next(e for e in entries if "watch" not in e)
        assert tune_entry["kernel"] == "convolution"
        assert tune_entry["faults"] == "flaky-gpu"
        assert tune_entry["age_s"] >= 0
        assert tune_entry["failure_breakdown"] == {
            "transient": 4, "retries": 2,
        }
        watch_entry = next(e for e in entries if "watch" in e)
        assert watch_entry["drift"] == "thermal-throttle"
        assert watch_entry["failure_breakdown"] == {}

    def test_bad_requests_keep_connection_alive(self, daemon):
        _, port = daemon
        with TuningClient("127.0.0.1", port) as c:
            c.sock.sendall(b"not json\n")
            assert c.recv()["type"] == "error"
            c.send({"op": "tune", "kernel": "no-such", "device": "nvidia"})
            assert c.recv()["type"] == "error"
            c.send({"op": "tune", "kernel": "convolution", "device": "no-such"})
            assert c.recv()["type"] == "error"
            c.send({"op": "tune", "kernel": "convolution", "device": "nvidia",
                    "faults": "bogus-profile"})
            assert c.recv()["type"] == "error"
            assert c.ping()

    def test_concurrent_identical_requests_coalesce_bit_identical(self):
        """The tentpole contract: N concurrent identical requests run ONE
        campaign whose result is bit-identical to a serial tune()."""
        ref, ref_ledger = serial_tune(seed=11)
        server = TuningServer(max_pending=4, max_workers=4)
        results = []
        with ServerThread(server) as port:
            def go():
                with TuningClient("127.0.0.1", port) as c:
                    results.append(
                        c.tune("convolution", "nvidia", seed=11, **SMALL)
                    )
            threads = [threading.Thread(target=go) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(results) == 6
        assert server.counters["campaigns"] == 1
        assert (
            server.counters["coalesced"] + server.counters["cache_hits"] == 5
        )
        first = results[0]["result"]
        assert all(r["result"] == first for r in results)
        assert first["best_index"] == ref.best_index
        assert first["best_time_s"] == ref.best_time_s
        assert results[0]["cost"]["total_s"] == ref_ledger.total_s

    def test_result_cache_replays_without_measuring(self, daemon):
        server, port = daemon
        with TuningClient("127.0.0.1", port) as c:
            r1 = c.tune("convolution", "nvidia", seed=21, **SMALL)
            campaigns_after_first = server.counters["campaigns"]
            r2 = c.tune("convolution", "nvidia", seed=21, **SMALL)
        assert not r1["cached"] and r2["cached"]
        assert r2["result"] == r1["result"]
        assert server.counters["campaigns"] == campaigns_after_first

    def test_different_keys_do_not_coalesce(self, daemon):
        server, port = daemon
        with TuningClient("127.0.0.1", port) as c:
            r1 = c.tune("convolution", "nvidia", seed=31, **SMALL)
            r2 = c.tune("convolution", "nvidia", seed=32, **SMALL)
        assert r1["result"] != r2["result"]

    def test_budget_exhaustion_degrades_not_crashes(self):
        """A campaign that hits its simulated-second budget mid-request
        returns a degraded result (budget_exhausted), and a client whose
        allowance is gone is rejected with a retry hint."""
        server = TuningServer(
            max_pending=4, max_workers=2, client_budget_s=30.0
        )
        with ServerThread(server) as port:
            with TuningClient("127.0.0.1", port) as c:
                r = c.tune("convolution", "nvidia", seed=41, **SMALL)
                assert r["result"]["degraded"]
                assert r["result"]["degraded_reason"] == "budget_exhausted"
                assert not r["result"]["failed"]  # still yields a pick
                assert r["account"]["spent_s"] > 0
                # The allowance is now spent: admission refuses.
                with pytest.raises(ServerRejected) as rej:
                    c.tune("convolution", "nvidia", seed=42, **SMALL)
                assert rej.value.reason == "client_budget_exhausted"
                assert rej.value.retry_after_s > 0
            # Budgets are per client: a fresh connection is admitted.
            with TuningClient("127.0.0.1", port) as c2:
                r2 = c2.tune("convolution", "nvidia", seed=41, **SMALL)
                assert r2["cached"]  # and the cache still serves it

    def test_backpressure_rejects_with_retry_hint(self):
        server = TuningServer(max_pending=1, max_workers=2)
        with ServerThread(server) as port:
            hold = {}
            def slow():
                with TuningClient("127.0.0.1", port) as c:
                    hold["r"] = c.tune(
                        "convolution", "nvidia", seed=51,
                        n_train=800, m_candidates=60,
                    )
            t = threading.Thread(target=slow)
            t.start()
            # Wait until the slow campaign occupies the only slot.
            while not server.inflight:
                pass
            with TuningClient("127.0.0.1", port) as c:
                with pytest.raises(ServerRejected) as rej:
                    c.tune("convolution", "intel", seed=52, **SMALL)
            assert rej.value.reason == "queue_full"
            assert rej.value.retry_after_s > 0
            assert server.counters["rejected"] == 1
            t.join()
            assert hold["r"]["result"]["best_index"] >= 0

    def test_streamed_events_reach_only_subscriber(self, daemon):
        _, port = daemon
        events = []
        with TuningClient("127.0.0.1", port) as c:
            r = c.tune(
                "convolution", "nvidia", seed=61, **SMALL,
                stream=True, on_event=events.append,
            )
        assert r["result"]["best_index"] >= 0
        kinds = {e["record"]["type"] for e in events}
        assert "span" in kinds  # tuner stage spans streamed live
        names = {
            e["record"].get("name")
            for e in events
            if e["record"]["type"] == "span"
        }
        assert "tune" in names

    def test_predict_serves_from_shared_model_cache(self, daemon):
        server, port = daemon
        with TuningClient("127.0.0.1", port) as c:
            r = c.tune("convolution", "nvidia", seed=71, **SMALL)
            best = r["result"]["best_config"]
            p = c.predict(
                "convolution", "nvidia", best,
                n_train=SMALL["n_train"], seed=71,
            )
            assert p["predicted_time_s"] > 0
            assert p["index"] == r["result"]["best_index"]
        # Another client reuses the same cached model (no new campaign).
        campaigns = server.counters["campaigns"]
        with TuningClient("127.0.0.1", port) as c2:
            p2 = c2.predict(
                "convolution", "nvidia", best,
                n_train=SMALL["n_train"], seed=71,
            )
        assert p2["predicted_time_s"] == p["predicted_time_s"]
        assert server.counters["campaigns"] == campaigns

    def test_predict_without_model_is_an_error(self, daemon):
        _, port = daemon
        with TuningClient("127.0.0.1", port) as c:
            with pytest.raises(RuntimeError, match="no model cached"):
                c.predict("convolution", "amd", {"wg_x": 1}, seed=999)

    def test_truth_computes_once_across_concurrent_clients(self, tmp_path):
        """The shared-oracle contract: N clients asking the same
        ground-truth question cost exactly one compute, persisted once."""
        server = TuningServer(
            max_pending=4, max_workers=2, oracle_store=tmp_path / "store"
        )
        got = []
        with ServerThread(server) as port:
            def ask():
                with TuningClient("127.0.0.1", port) as c:
                    got.append(c.truth("convolution", "nvidia", 12345))
            threads = [threading.Thread(target=ask) for _ in range(5)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = server.oracles.stats_snapshot()
        assert len({g["true_time_s"] for g in got}) == 1
        # One entry computed and saved, no matter how many clients asked.
        assert stats["partial_entries_saved"] == 1

    def test_graceful_drain_finishes_inflight_work(self):
        server = TuningServer(max_pending=4, max_workers=2)
        thread = ServerThread(server)
        port = thread.start()
        try:
            hold = {}
            def tune():
                with TuningClient("127.0.0.1", port) as c:
                    hold["r"] = c.tune(
                        "convolution", "nvidia", seed=81, **SMALL
                    )
            t = threading.Thread(target=tune)
            t.start()
            while not server.inflight:
                pass
            with TuningClient("127.0.0.1", port) as c:
                c.shutdown()
            t.join(timeout=120)
            # The in-flight campaign completed and answered its client.
            assert hold["r"]["result"]["best_index"] >= 0
            assert server.draining and not server.inflight
        finally:
            thread.stop()


class TestLoadGenerator:
    def test_duplicate_heavy_load_coalesces(self):
        server = TuningServer(max_pending=4, max_workers=4)
        with ServerThread(server) as port:
            summary = run_load(
                "127.0.0.1", port,
                n_clients=4, requests_per_client=2,
                n_train=300, m_candidates=30,
            )
        assert summary["errors"] == []
        assert summary["completed"] == 8
        # 8 identical requests -> one campaign; everyone else shared.
        assert server.counters["campaigns"] == 1
        assert summary["coalesced"] + summary["cached"] == 7
        assert summary["p99_s"] >= summary["p50_s"] > 0
