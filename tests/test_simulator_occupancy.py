"""Tests for the occupancy model."""

import dataclasses

import pytest

from repro.simulator.devices import AMD_HD7970, NVIDIA_K40
from repro.simulator.occupancy import compute_occupancy, effective_registers_per_thread
from repro.simulator.workload import WorkloadProfile


def profile(wg=(32, 8), local_bytes=0, regs=16, grid=(2048, 2048)):
    return WorkloadProfile(
        global_size=grid,
        workgroup=wg,
        flops_per_thread=10.0,
        local_mem_per_wg_bytes=local_bytes,
        registers_per_thread=regs,
    )


class TestLimiters:
    def test_thread_limited(self):
        # 1024-thread groups on the K40: 2048/1024 = 2 resident.
        occ = compute_occupancy(profile(wg=(32, 32)), NVIDIA_K40)
        assert occ.workgroups_per_cu == 2
        assert occ.occupancy == pytest.approx(1.0)
        assert occ.limiter == "threads"

    def test_slot_limited(self):
        # Tiny groups: the 16 slots bind before the 2048-thread budget.
        occ = compute_occupancy(profile(wg=(8, 4)), NVIDIA_K40)
        assert occ.workgroups_per_cu == 16
        assert occ.limiter == "slots"
        assert occ.occupancy == pytest.approx(16 * 32 / 2048)

    def test_local_memory_limited(self):
        # 20 KB/group against 48 KB scratch: 2 resident groups.
        occ = compute_occupancy(profile(local_bytes=20 * 1024), NVIDIA_K40)
        assert occ.workgroups_per_cu == 2
        assert occ.limiter == "local_mem"

    def test_register_limited(self):
        # 200 regs x 512 threads = 102400 > 65536: no group fits.
        occ = compute_occupancy(profile(wg=(32, 16), regs=200), NVIDIA_K40)
        assert occ.workgroups_per_cu == 0
        assert occ.limiter == "registers"

    def test_amd_full_occupancy_from_wavefront_groups(self):
        # GCN: 40 wave slots -> 64-thread groups already fill the CU.
        occ = compute_occupancy(profile(wg=(64, 1)), AMD_HD7970)
        assert occ.occupancy == pytest.approx(1.0)


class TestLaunchBound:
    def test_residency_capped_by_workgroups_in_launch(self):
        # A launch with fewer groups than one CU could hold.
        p = profile(wg=(32, 8), grid=(64, 16))  # 4 work-groups total
        occ = compute_occupancy(p, NVIDIA_K40)
        assert occ.workgroups_per_cu == 1

    def test_occupancy_bounded_by_one(self):
        occ = compute_occupancy(profile(), NVIDIA_K40)
        assert 0.0 < occ.occupancy <= 1.0


class TestRegisterClamp:
    def test_demand_clamped_to_ceiling(self):
        p = profile(regs=400)
        assert effective_registers_per_thread(p, NVIDIA_K40) == 255

    def test_below_ceiling_unchanged(self):
        p = profile(regs=40)
        assert effective_registers_per_thread(p, NVIDIA_K40) == 40

    def test_clamped_demand_can_still_launch(self):
        # 400 requested -> clamped to 255; 255*64 = 16320 < 65536.
        occ = compute_occupancy(profile(wg=(8, 8), regs=400), NVIDIA_K40)
        assert occ.workgroups_per_cu >= 1


class TestMonotonicity:
    def test_more_local_memory_never_raises_occupancy(self):
        prev = None
        for kb in (4, 8, 16, 24, 48):
            occ = compute_occupancy(profile(local_bytes=kb * 1024), NVIDIA_K40)
            if prev is not None:
                assert occ.workgroups_per_cu <= prev
            prev = occ.workgroups_per_cu

    def test_more_registers_never_raise_occupancy(self):
        prev = None
        for regs in (16, 32, 64, 128, 255):
            occ = compute_occupancy(profile(wg=(16, 16), regs=regs), NVIDIA_K40)
            if prev is not None:
                assert occ.workgroups_per_cu <= prev
            prev = occ.workgroups_per_cu
