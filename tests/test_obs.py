"""Tests for the observability layer: spans, counters, JSONL traces.

Covers the tracer primitives in isolation, the schema round-trip through
a file, the instrumented pipeline (per-stage cost deltas summing to the
run's ledger delta), and campaign grids merging per-worker traces.
"""

import json

import numpy as np
import pytest

from repro.core.campaign import run_campaign_grid
from repro.core.measure import Measurer
from repro.core.search import exhaustive_search
from repro.core.tuner import MLAutoTuner, TunerSettings
from repro.kernels import ConvolutionKernel
from repro.obs import (
    NULL_TRACER,
    SCHEMA_VERSION,
    Tracer,
    TraceSummary,
    git_revision,
    load_trace,
    render_summary,
    run_manifest,
    summarize,
)
from repro.runtime import Context
from repro.simulator import NVIDIA_K40


def spans_of(records, name=None):
    spans = [r for r in records if r.get("type") == "span"]
    if name is not None:
        spans = [s for s in spans if s["name"] == name]
    return spans


class TestTracerPrimitives:
    def test_span_nesting_depth_and_parent(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("middle"):
                with t.span("inner"):
                    pass
        by_name = {s["name"]: s for s in spans_of(t.records)}
        assert by_name["outer"]["depth"] == 0 and "parent" not in by_name["outer"]
        assert by_name["middle"]["depth"] == 1
        assert by_name["middle"]["parent"] == "outer"
        assert by_name["inner"]["depth"] == 2
        assert by_name["inner"]["parent"] == "middle"
        # Children exit (and are emitted) before their parents.
        names = [s["name"] for s in spans_of(t.records)]
        assert names == ["inner", "middle", "outer"]

    def test_span_attrs_and_set(self):
        t = Tracer()
        with t.span("work", phase="x") as sp:
            sp.set(n=42)
        (span,) = spans_of(t.records)
        assert span["attrs"] == {"phase": "x", "n": 42}
        assert span["dur_s"] >= 0

    def test_counters_accumulate_gauges_overwrite(self):
        t = Tracer()
        t.count("hits", 3)
        t.count("hits", 4)
        t.gauge("epoch", 10)
        t.gauge("epoch", 20)
        t.close()
        assert t.counters["hits"] == 7
        assert t.gauges["epoch"] == 20
        kinds = {r["type"]: r for r in t.records}
        assert kinds["counters"]["values"] == {"hits": 7}
        assert kinds["gauges"]["values"] == {"epoch": 20}

    def test_span_records_ledger_cost_delta(self):
        class FakeLedger:
            total_s = 0.0

        ledger = FakeLedger()
        t = Tracer(ledger=ledger)
        with t.span("outer"):
            ledger.total_s += 5.0
            with t.span("inner"):
                ledger.total_s += 2.0
        by_name = {s["name"]: s for s in spans_of(t.records)}
        assert by_name["inner"]["cost_s"] == pytest.approx(2.0)
        assert by_name["outer"]["cost_s"] == pytest.approx(7.0)

    def test_crash_inside_span_still_emits_marked_record(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("doomed"):
                raise RuntimeError("boom")
        (span,) = spans_of(t.records)
        assert span["failed"] is True

    def test_close_flushes_abandoned_spans(self):
        t = Tracer()
        t.span("left-open").__enter__()
        t.close()
        (span,) = spans_of(t.records)
        assert span["name"] == "left-open" and span["failed"] is True

    def test_emit_after_close_rejected(self):
        t = Tracer()
        t.close()
        with pytest.raises(RuntimeError):
            t.event("too-late")

    def test_null_tracer_is_inert(self):
        before = list(NULL_TRACER.__dict__)
        with NULL_TRACER.span("x", a=1) as sp:
            sp.set(b=2)
        NULL_TRACER.count("c", 3)
        NULL_TRACER.gauge("g", 4)
        NULL_TRACER.event("e", x=5)
        NULL_TRACER.bind_ledger(object())
        NULL_TRACER.close()
        assert not NULL_TRACER.enabled
        assert list(NULL_TRACER.__dict__) == before  # no state accreted

    def test_non_finite_floats_stay_strict_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = Tracer(path)
        t.event("odd", value=float("nan"), other=float("inf"))
        t.close()
        for line in path.read_text().splitlines():
            json.loads(line)  # bare NaN tokens would raise here
        (event,) = [r for r in load_trace(path) if r["type"] == "event"]
        assert event["attrs"]["value"] == "nan"

    def test_numpy_values_coerced(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = Tracer(path)
        t.event("np", scalar=np.int64(3), arr=np.arange(3), f=np.float64(0.5))
        t.close()
        (event,) = [r for r in load_trace(path) if r["type"] == "event"]
        assert event["attrs"] == {"scalar": 3, "arr": [0, 1, 2], "f": 0.5}


class TestManifestAndSchema:
    def test_manifest_is_first_record_with_schema_version(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = Tracer(path, manifest=run_manifest(kernel="k", device="d", seed=3))
        t.event("later")
        t.close()
        records = load_trace(path)
        first = records[0]
        assert first["type"] == "manifest"
        assert first["schema"] == SCHEMA_VERSION
        assert first["kernel"] == "k" and first["device"] == "d"
        assert first["seed"] == 3
        assert "git_rev" in first and "python" in first

    def test_git_revision_resolves_in_this_repo(self):
        rev = git_revision()
        # The repo is a git checkout, so this must resolve to a hex hash.
        assert rev is not None and len(rev) == 40
        int(rev, 16)

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = Tracer(path, manifest={"kernel": "k"})
        with t.span("a", n=1):
            t.event("ev", detail="fine")
        t.count("c", 2)
        t.close()
        records = load_trace(path)
        types = [r["type"] for r in records]
        assert types == ["manifest", "event", "span", "counters"]
        # Every line independently parseable (the JSONL contract).
        for line in path.read_text().splitlines():
            assert json.loads(line)


class TestInstrumentedPipeline:
    @pytest.fixture(scope="class")
    def spec(self):
        return ConvolutionKernel()

    def test_stage_costs_sum_to_run_ledger_delta(self, spec, tmp_path):
        path = tmp_path / "tune.jsonl"
        tracer = Tracer(path, manifest=run_manifest(kernel=spec.name))
        ctx = Context(NVIDIA_K40, seed=11, tracer=tracer)
        tuner = MLAutoTuner(
            ctx, spec, TunerSettings(n_train=200, m_candidates=20)
        )
        result = tuner.tune(np.random.default_rng(11), model_seed=11)
        tracer.close()

        records = load_trace(path)
        (tune_span,) = spans_of(records, "tune")
        stage_spans = [s for s in spans_of(records) if s["depth"] == 1]
        assert {s["name"] for s in stage_spans} == {
            "stage1.measure",
            "stage2.train",
            "stage2.propose",
            "stage2.evaluate",
        }
        stage_cost = sum(s["cost_s"] for s in stage_spans)
        assert stage_cost == pytest.approx(result.total_cost_s)
        assert tune_span["cost_s"] == pytest.approx(result.total_cost_s)
        assert result.total_cost_s == pytest.approx(ctx.ledger.total_s)

    def test_engine_counters_folded_into_trace(self, spec):
        tracer = Tracer()
        ctx = Context(NVIDIA_K40, seed=5, tracer=tracer)
        m = Measurer(ctx, spec, repeats=3)
        idx = spec.space.sample_indices(500, np.random.default_rng(5))
        ms = m.measure_batch(idx)
        tracer.close()
        assert tracer.counters["measure.requested"] == 500
        assert tracer.counters["measure.simulated"] == m.stats.n_simulated
        assert tracer.counters["measure.invalid"] == ms.n_invalid
        (batch_span,) = spans_of(tracer.records, "measure.batch")
        assert batch_span["attrs"]["n"] == 500

    def test_ensemble_fit_reports_epochs_and_stop_reason(self, spec):
        tracer = Tracer()
        ctx = Context(NVIDIA_K40, seed=3, tracer=tracer)
        tuner = MLAutoTuner(
            ctx, spec, TunerSettings(n_train=150, m_candidates=10)
        )
        tuner.collect_training_data(np.random.default_rng(3))
        tuner.train_model(3)
        tracer.close()
        (fit_span,) = spans_of(tracer.records, "ensemble.fit")
        attrs = fit_span["attrs"]
        assert attrs["stop_reason"] in ("early_stop", "max_epochs", "all_frozen")
        assert attrs["epochs_run"] >= 1
        assert attrs["mode"] == "adaptive"
        assert 0 <= attrs["n_frozen"] <= attrs["k"]
        member_epochs = attrs["member_epochs"]
        assert len(member_epochs) == attrs["k"]
        assert all(1 <= e <= attrs["epochs_run"] for e in member_epochs)
        (curve,) = [
            r
            for r in tracer.records
            if r.get("type") == "event" and r["name"] == "ensemble.loss_curve"
        ]
        # The event is downsampled to <= 64 points; the full curve length
        # travels as the `epochs` field.
        losses = curve["attrs"]["losses"]
        epochs_traced = curve["attrs"]["loss_epochs"]
        assert curve["attrs"]["epochs"] == attrs["epochs_run"]
        assert len(losses) == len(epochs_traced) <= 64
        assert epochs_traced[0] == 0
        assert epochs_traced[-1] == attrs["epochs_run"] - 1
        assert curve["attrs"]["downsampled"] == (len(losses) < attrs["epochs_run"])
        assert all(isinstance(l, float) for l in losses)
        assert tracer.gauges["ml.early_stop_epoch"] == attrs["epochs_run"]

    def test_exhaustive_search_traces_checkpoints(self, spec, tmp_path):
        from repro.core.results import MeasurementDB

        tracer = Tracer()
        ctx = Context(NVIDIA_K40, seed=2, tracer=tracer)
        m = Measurer(ctx, spec)
        db = MeasurementDB(tmp_path / "db.json")
        exhaustive_search(
            m, db=db, indices=range(600), chunk_size=100, checkpoint_every=2
        )
        tracer.close()
        (span,) = spans_of(tracer.records, "search.exhaustive")
        assert span["attrs"]["n"] == 600
        assert span["attrs"]["checkpoints"] == tracer.counters["search.checkpoints"]
        events = [
            r
            for r in tracer.records
            if r.get("type") == "event" and r["name"] == "search.checkpoint"
        ]
        assert len(events) == 3  # 6 chunks, every 2nd (final save has no event)

    def test_untraced_pipeline_unchanged_by_tracing(self, spec):
        """Tracing must not perturb results: same seed, same outcome."""
        ctx_a = Context(NVIDIA_K40, seed=9)
        res_a = MLAutoTuner(
            ctx_a, spec, TunerSettings(n_train=150, m_candidates=10)
        ).tune(np.random.default_rng(9), model_seed=9)
        tracer = Tracer()
        ctx_b = Context(NVIDIA_K40, seed=9, tracer=tracer)
        res_b = MLAutoTuner(
            ctx_b, spec, TunerSettings(n_train=150, m_candidates=10)
        ).tune(np.random.default_rng(9), model_seed=9)
        tracer.close()
        assert res_a.best_index == res_b.best_index
        assert res_a.best_time_s == res_b.best_time_s
        assert res_a.total_cost_s == res_b.total_cost_s


class TestPerRunCostAttribution:
    """Regression: total_cost_s must be this run's delta, not the context's
    lifetime total (two tuners sharing a Context were double-billed)."""

    def test_two_sequential_tuners_on_one_context(self):
        spec = ConvolutionKernel()
        ctx = Context(NVIDIA_K40, seed=21)
        settings = TunerSettings(n_train=150, m_candidates=10)
        first = MLAutoTuner(ctx, spec, settings).tune(
            np.random.default_rng(21), model_seed=21
        )
        after_first = ctx.ledger.total_s
        second = MLAutoTuner(ctx, spec, settings).tune(
            np.random.default_rng(22), model_seed=22
        )
        assert first.total_cost_s == pytest.approx(after_first)
        assert second.total_cost_s == pytest.approx(
            ctx.ledger.total_s - after_first
        )
        # The old bug: second.total_cost_s == ledger lifetime total.
        assert second.total_cost_s < ctx.ledger.total_s
        assert first.total_cost_s + second.total_cost_s == pytest.approx(
            ctx.ledger.total_s
        )

    def test_iterative_tuner_reports_delta_too(self):
        from repro.core.iterative import IterativeSettings, IterativeTuner

        spec = ConvolutionKernel()
        ctx = Context(NVIDIA_K40, seed=4)
        ctx.ledger.run_s += 1234.5  # pre-existing spend on this context
        result = IterativeTuner(
            ctx, spec, IterativeSettings(total_budget=200, rounds=2)
        ).tune(np.random.default_rng(4), model_seed=4)
        assert result.total_cost_s == pytest.approx(ctx.ledger.total_s - 1234.5)


class TestCampaignGridTraces:
    def test_grid_merges_per_worker_traces(self, tmp_path):
        spec = ConvolutionKernel()
        path = tmp_path / "grid.jsonl"
        tracer = Tracer(path, manifest=run_manifest(command="campaign"))
        report = run_campaign_grid(
            [spec],
            ["nvidia", "intel"],
            settings=TunerSettings(n_train=150, m_candidates=10),
            max_workers=2,
            seed=13,
            tracer=tracer,
        )
        tracer.close()
        records = load_trace(path)
        workers = {r.get("worker") for r in records if "worker" in r}
        assert workers == {"convolution@Nvidia K40", "convolution@Intel i7 3770"}
        # One worker manifest per cell, one fleet-wide counters record.
        manifests = [r for r in records if r["type"] == "worker_manifest"]
        assert len(manifests) == 2
        assert len([r for r in records if r["type"] == "counters"]) == 1
        # Each worker contributed a full tune span tree.
        tune_spans = spans_of(records, "tune")
        assert len(tune_spans) == 2
        for cell in report.cells:
            (span,) = [
                s
                for s in tune_spans
                if s["worker"] == f"{cell.kernel}@{cell.device}"
            ]
            assert span["cost_s"] == pytest.approx(cell.ledger.total_s)

    def test_grid_worker_counters_summed_once(self, tmp_path):
        spec = ConvolutionKernel()
        path = tmp_path / "grid.jsonl"
        tracer = Tracer(path)
        report = run_campaign_grid(
            [spec],
            ["nvidia", "intel"],
            settings=TunerSettings(n_train=150, m_candidates=10),
            max_workers=1,  # inline workers, same merge path
            seed=13,
            tracer=tracer,
        )
        tracer.close()
        summary = summarize(path)
        assert summary.counters["measure.requested"] == (
            report.total_stats.n_requested
        )
        assert summary.counters["measure.invalid"] == report.total_stats.n_invalid

    def test_grid_without_tracer_writes_nothing(self, tmp_path):
        spec = ConvolutionKernel()
        run_campaign_grid(
            [spec],
            ["intel"],
            settings=TunerSettings(n_train=150, m_candidates=10),
            max_workers=1,
            seed=13,
        )
        assert list(tmp_path.iterdir()) == []


class TestTraceSummary:
    def test_summary_aggregates_and_renders(self, tmp_path):
        spec = ConvolutionKernel()
        path = tmp_path / "tune.jsonl"
        tracer = Tracer(path, manifest=run_manifest(kernel=spec.name, seed=1))
        ctx = Context(NVIDIA_K40, seed=1, tracer=tracer)
        MLAutoTuner(ctx, spec, TunerSettings(n_train=150, m_candidates=10)).tune(
            np.random.default_rng(1), model_seed=1
        )
        tracer.close()

        summary = TraceSummary(load_trace(path))
        assert summary.manifest["kernel"] == spec.name
        assert summary.total_cost_s == pytest.approx(ctx.ledger.total_s)
        # Self-costs partition the total exactly (no double counting).
        self_total = sum(a.self_cost_s for a in summary.spans.values())
        assert self_total == pytest.approx(ctx.ledger.total_s)

        text = render_summary(path)
        assert "stage1.measure" in text
        assert "per-stage breakdown" in text
        assert "counters" in text

    def test_render_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert render_summary(path) == "empty trace"


class TestCLITrace:
    def test_tune_trace_flag_writes_parseable_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.jsonl"
        rc = main(
            ["tune", "-k", "convolution", "-d", "nvidia", "-n", "200",
             "-m", "20", "--seed", "3", "--trace", str(path)]
        )
        out = capsys.readouterr().out
        assert rc in (0, 1)
        assert f"trace written to {path}" in out
        records = load_trace(path)
        assert records[0]["type"] == "manifest"
        assert records[0]["command"] == "tune"
        assert spans_of(records, "tune")

    def test_trace_summary_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.jsonl"
        assert main(
            ["tune", "-k", "convolution", "-d", "intel", "-n", "150",
             "-m", "10", "--seed", "1", "--trace", str(path)]
        ) in (0, 1)
        capsys.readouterr()
        assert main(["trace-summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "per-stage breakdown" in out and "run manifest" in out

    def test_trace_summary_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace-summary", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such trace" in capsys.readouterr().err


class TestSinkAndConcurrency:
    """The serve-daemon hardening: sink streaming, thread-safe writes, and
    durable spans on exception paths."""

    def test_sink_receives_every_record(self):
        got = []
        tracer = Tracer(sink=got.append, manifest={"command": "t"})
        with tracer.span("work"):
            tracer.event("progress", step=1)
        tracer.close()
        types = [r["type"] for r in got]
        assert types[0] == "manifest"
        assert "event" in types and "span" in types

    def test_sink_only_tracer_does_not_accumulate(self):
        tracer = Tracer(sink=lambda r: None)
        for _ in range(100):
            tracer.event("tick")
        assert tracer.records == []  # a long-lived server must not grow

    def test_sink_and_path_both_served(self, tmp_path):
        got = []
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path, sink=got.append)
        tracer.event("x")
        tracer.close()
        assert len(got) == 1
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["name"] == "x"

    def test_concurrent_emits_never_interleave(self, tmp_path):
        import threading

        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        n_threads, per_thread = 8, 200

        def worker(k):
            for i in range(per_thread):
                tracer.event(f"w{k}", i=i, pad="x" * 64)
                tracer.count(f"c{k}")

        threads = [
            threading.Thread(target=worker, args=(k,))
            for k in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tracer.close()
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]  # raises if torn
        events = [r for r in records if r["type"] == "event"]
        assert len(events) == n_threads * per_thread
        counters = [r for r in records if r["type"] == "counters"]
        assert counters[0]["values"] == {
            f"c{k}": per_thread for k in range(n_threads)
        }

    def test_failed_span_is_durable_before_close(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        # Before close(): the failed span must already be on disk.
        on_disk = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(
            r.get("name") == "doomed" and r.get("failed") for r in on_disk
        )
        tracer.close()

    def test_close_is_idempotent_and_threadsafe(self, tmp_path):
        import threading

        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        tracer.count("n", 3)
        threads = [threading.Thread(target=tracer.close) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert sum(r["type"] == "counters" for r in records) == 1
