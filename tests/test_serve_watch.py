"""Serve-layer drift additions: the ``watch`` op, plus the accounting
fixes that rode along (locked request counting, LRU eviction visibility).
"""

from __future__ import annotations

import threading

import pytest

from repro.serve import protocol
from repro.serve.client import TuningClient
from repro.serve.server import ServerThread, TuningServer
from repro.serve.state import ClientAccount, _LRU


# -- _LRU evictions ------------------------------------------------------------


def test_lru_counts_evictions():
    lru = _LRU(2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.evictions == 0
    lru.put("c", 3)  # drops "a"
    assert lru.evictions == 1
    assert lru.get("a") is None
    snap = lru.stats_snapshot()
    assert snap["evictions"] == 1
    assert snap["entries"] == 2
    # Overwriting an existing key evicts nothing.
    lru.put("c", 4)
    assert lru.evictions == 1


# -- ClientAccount.inc_requests ------------------------------------------------


def test_request_count_exact_under_concurrency():
    account = ClientAccount("c")
    n_threads, per_thread = 8, 500

    def hammer():
        for _ in range(per_thread):
            account.inc_requests()

    threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert account.snapshot()["requests"] == n_threads * per_thread


# -- validate_watch ------------------------------------------------------------


def test_validate_watch_defaults_and_overrides():
    out = protocol.validate_watch({"kernel": "convolution", "device": "nvidia"})
    assert out["n_train"] == protocol.WATCH_DEFAULTS["n_train"]
    assert out["steps"] == protocol.WATCH_DEFAULTS["steps"]
    assert out["stream"] is True  # watch streams by default
    out = protocol.validate_watch({
        "kernel": "convolution", "device": "nvidia",
        "steps": 10, "interval_s": 5, "retune_window": 4,
        "drift": "thermal-throttle", "stream": False,
    })
    assert out["steps"] == 10
    assert out["interval_s"] == 5.0
    assert out["retune_window"] == 4
    assert out["drift"] == "thermal-throttle"
    assert out["stream"] is False


@pytest.mark.parametrize("req", [
    {"device": "nvidia"},                                      # no kernel
    {"kernel": "", "device": "nvidia"},                        # empty kernel
    {"kernel": "convolution", "device": "nvidia", "steps": -1},
    {"kernel": "convolution", "device": "nvidia", "steps": 1.5},
    {"kernel": "convolution", "device": "nvidia", "retune_window": 0},
    {"kernel": "convolution", "device": "nvidia", "interval_s": -2},
    {"kernel": "convolution", "device": "nvidia", "drift": 42},
    {"kernel": "convolution", "device": "nvidia", "n_train": True},
])
def test_validate_watch_rejects_bad_requests(req):
    with pytest.raises(protocol.ProtocolError):
        protocol.validate_watch(req)


# -- end-to-end watch ----------------------------------------------------------


@pytest.mark.slow
def test_watch_end_to_end_with_drift_and_clean_drain():
    events = []
    server = TuningServer(max_pending=4, max_workers=2)
    with ServerThread(server) as port:
        with TuningClient("127.0.0.1", port, timeout=300) as client:
            reply = client.watch(
                "convolution", "nvidia",
                n_train=120, m_candidates=12, seed=7,
                steps=60, interval_s=30.0, retune_window=16,
                drift="thermal-throttle:onset_s=1200,ramp_s=120,"
                      "throttle_factor=1.5",
                on_event=lambda e: events.append(e),
            )
            stats = client.stats()

    res = reply["result"]
    assert res["alarms"] >= 1
    assert len(res["retunes"]) >= 1
    assert res["steps"] == 60
    assert "incumbent_config" in res
    assert res["initial"]["failed"] is False
    assert "detector" in res
    # Cost accounting flowed back and was charged to the initiator.
    assert reply["cost"]["total_s"] > 0
    assert reply["account"]["campaigns"] == 1
    assert reply["account"]["spent_s"] == pytest.approx(
        reply["cost"]["total_s"]
    )
    # The event stream carried the drift story live.
    names = {e["record"].get("name") for e in events}
    assert "drift.alarm" in names
    assert "online.retune" in names
    # Every event frame is tagged with the watch identity.
    assert all(e["key"]["watch"] == 1 for e in events)
    # Server bookkeeping: watch counted, nothing left in flight, caches
    # expose the new evictions counter.
    assert stats["counters"]["watches"] == 1
    assert stats["counters"]["errors"] == 0
    assert stats["inflight"] == 0
    assert "evictions" in stats["result_cache"]
    assert "evictions" in stats["model_cache"]
    assert server.draining


@pytest.mark.slow
def test_watch_rejects_unknown_profiles_and_drains():
    server = TuningServer(max_pending=4, max_workers=2)
    with ServerThread(server) as port:
        with TuningClient("127.0.0.1", port, timeout=60) as client:
            with pytest.raises(RuntimeError, match="drift"):
                client.watch(
                    "convolution", "nvidia", steps=1,
                    drift="definitely-not-a-profile",
                )
            with pytest.raises(RuntimeError, match="kernel"):
                client.watch("nope", "nvidia", steps=1)
            # The connection survived both errors.
            assert client.ping()
