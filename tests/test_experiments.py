"""Tests for the experiment harness: oracle, presets, reporting, and smoke
runs of the cheap experiments (the heavy ones are exercised — and their
shape claims asserted — by the benchmark suite)."""

import numpy as np
import pytest

from repro.experiments import TrueTimeOracle, get_preset
from repro.experiments.presets import FAST, FULL, PAPER_TRAINING_SIZES
from repro.experiments.reporting import header, kv_block, ms, pct, series, table
from repro.kernels import StereoKernel
from repro.kernels.convolution import ConvolutionKernel, ConvolutionProblem
from repro.simulator import NVIDIA_K40


class TestOracle:
    @pytest.fixture(scope="class")
    def oracle(self):
        return TrueTimeOracle(ConvolutionKernel(), NVIDIA_K40)

    def test_invalid_is_nan(self, oracle):
        cfg = oracle.spec.space.config(
            wg_x=128, wg_y=128, ppt_x=1, ppt_y=1, use_image=0, use_local=0,
            pad=0, interleaved=0, unroll=0,
        )
        assert np.isnan(oracle.time_of(cfg.index))

    def test_memoized_and_deterministic(self, oracle):
        a = oracle.time_of(123)
        b = oracle.time_of(123)
        assert a == b

    def test_times_for_alignment(self, oracle):
        idx = [5, 10, 123]
        times = oracle.times_for(idx)
        assert times.shape == (3,)
        assert times[2] == oracle.time_of(123)

    def test_full_table_refuses_huge_spaces(self):
        oracle = TrueTimeOracle(StereoKernel(), NVIDIA_K40)
        with pytest.raises(ValueError, match="too large"):
            oracle.full_table()

    def test_global_optimum_on_small_space(self):
        spec = ConvolutionKernel(ConvolutionProblem(64, 64, 5))
        # Timing model scales with the spec's problem; space is the same
        # 131072 points, so use a sub-sampled optimum check instead:
        oracle = TrueTimeOracle(spec, NVIDIA_K40)
        idx = list(range(0, spec.space.size, 1024))
        best_i, best_t = oracle.best_among(idx)
        assert best_t == np.nanmin(oracle.times_for(idx))
        assert best_i in idx

    def test_best_among_all_invalid_raises(self, oracle):
        bad = oracle.spec.space.config(
            wg_x=128, wg_y=128, ppt_x=1, ppt_y=1, use_image=0, use_local=0,
            pad=0, interleaved=0, unroll=0,
        ).index
        with pytest.raises(ValueError):
            oracle.best_among([bad])

    def test_measure_noisy_but_unbiased(self, oracle):
        rng = np.random.default_rng(0)
        true = oracle.time_of(123)
        xs = np.array([oracle.measure([123], rng, repeats=1)[0] for _ in range(300)])
        assert np.abs(np.log(xs / true).mean()) < 0.02

    def test_measure_noise_is_keyed_not_positional(self, oracle):
        # Permuting the request permutes the results: noise must depend on
        # the configuration index, not on its position in the call.
        idx = np.array([5, 10, 123, 200, 321], dtype=np.int64)
        perm = np.array([3, 0, 4, 1, 2])
        r1 = oracle.measure(idx, np.random.default_rng(7))
        r2 = oracle.measure(idx[perm], np.random.default_rng(7))
        np.testing.assert_array_equal(r1[perm], r2)

    def test_measure_duplicates_identical_within_call(self, oracle):
        r = oracle.measure([123, 5, 123], np.random.default_rng(3))
        assert r[0] == r[2]

    def test_measure_successive_calls_independent(self, oracle):
        rng = np.random.default_rng(11)
        idx = [5, 10, 123]
        a = oracle.measure(idx, rng)
        b = oracle.measure(idx, rng)
        assert not np.array_equal(a, b)

    def test_measure_consumes_one_rng_draw_per_call(self, oracle):
        # The call key is the only rng consumption, regardless of batch size.
        rng1 = np.random.default_rng(9)
        rng2 = np.random.default_rng(9)
        oracle.measure(np.arange(100), rng1)
        oracle.measure([0], rng2)
        assert rng1.integers(1 << 62) == rng2.integers(1 << 62)

    def test_keyed_normals_look_standard(self):
        from repro.experiments.oracle import keyed_standard_normal

        z = keyed_standard_normal(42, np.arange(100_000), repeats=2)
        assert abs(float(z.mean())) < 0.02
        assert abs(float(z.std()) - 1.0) < 0.02

    def test_times_for_caches_vectorized(self, monkeypatch):
        oracle = TrueTimeOracle(ConvolutionKernel(), NVIDIA_K40)
        calls = []
        real = TrueTimeOracle._compute_batch

        def counting(self, indices):
            calls.append(np.asarray(indices).copy())
            return real(self, indices)

        monkeypatch.setattr(TrueTimeOracle, "_compute_batch", counting)
        idx = np.array([4, 9, 4, 77], dtype=np.int64)
        first = oracle.times_for(idx)
        assert calls[0].tolist() == [4, 9, 77]  # deduplicated before compute
        second = oracle.times_for(idx)
        assert len(calls) == 1  # fully served from the mask/value cache
        np.testing.assert_array_equal(first, second)


class TestPresets:
    def test_full_matches_paper_grids(self):
        assert FULL.training_sizes == PAPER_TRAINING_SIZES
        assert FULL.tuner_m == (10, 50, 100, 150, 200)
        assert FULL.fig14_train == 3000 and FULL.fig14_m == 300
        assert FULL.fig14_random_budget == 50000

    def test_fast_keeps_axes(self):
        assert max(FAST.training_sizes) == 4000
        assert min(FAST.training_sizes) == 100

    def test_lookup(self, monkeypatch):
        assert get_preset("full") is FULL
        assert get_preset(FAST) is FAST
        monkeypatch.setenv("REPRO_PRESET", "full")
        assert get_preset() is FULL
        with pytest.raises(KeyError):
            get_preset("turbo")


class TestReporting:
    def test_table_alignment(self):
        txt = table([(1, "ab"), (22, "c")], headers=("n", "name"))
        lines = txt.splitlines()
        assert lines[0].startswith("n")
        assert len(lines) == 4

    def test_pct_and_ms(self):
        assert pct(0.061) == "6.1%"
        assert pct(float("nan")) == "missing"
        assert ms(0.00123) == "1.230 ms"
        assert ms(float("nan")) == "missing"

    def test_series_handles_nan(self):
        txt = series([1, 2], [0.5, float("nan")])
        assert "missing" in txt

    def test_header_and_kv(self):
        assert "Title" in header("Title")
        block = kv_block({"a": 1, "long key": 2})
        assert "long key : 2" in block


class TestCheapExperiments:
    def test_tables_experiment(self):
        from repro.experiments import tables

        r = tables.run()
        txt = tables.format_text(r)
        assert "131072" in txt and "[OK]" in txt and "MISMATCH" not in txt

    def test_fig02_experiment(self):
        from repro.experiments import fig02_ann

        r = fig02_ann.run()
        assert r["convolution"]["features"] == 9
        assert r["raycasting"]["features"] == 10
        assert r["stereo"]["features"] == 11
        # 30 hidden sigmoid units over f features: f*30+30 + 30+1 params.
        assert r["convolution"]["parameters"] == 9 * 30 + 30 + 31
        assert "sigmoid" in fig02_ann.format_text(r)

    def test_cost_accounting_small(self):
        from repro.experiments import cost_accounting

        r = cost_accounting.run(n_train=60, seed=0)
        assert r["n_valid"] + r["n_invalid"] == 60
        assert r["gather_total_s"] > 0
        txt = cost_accounting.format_text(r)
        assert "total gathering" in txt

    def test_run_all_registry_complete(self):
        from repro.experiments.run_all import EXPERIMENTS

        assert set(EXPERIMENTS) == {
            "tables", "fig01", "fig02", "fig04-06", "fig07",
            "fig08-10", "fig11-13", "fig14", "cost", "sec7",
        }

    def test_run_all_selects_and_rejects(self, capsys):
        from repro.experiments.run_all import run_all

        rendered = run_all(only=["tables", "fig02"], stream=None)
        assert set(rendered) == {"tables", "fig02"}
        with pytest.raises(KeyError):
            run_all(only=["fig99"], stream=None)

    def test_write_experiments_md(self, tmp_path):
        from repro.experiments.run_all import run_all, write_experiments_md

        rendered = run_all(only=["tables"], stream=None)
        out = tmp_path / "EXPERIMENTS.md"
        write_experiments_md(str(out), rendered, "fast")
        text = out.read_text()
        assert "paper vs. measured" in text
        assert "```text" in text
