"""Tests for the baseline regressors: linear, kNN, trees, forests, boosting."""

import numpy as np
import pytest

from repro.ml import (
    GradientBoostedTrees,
    KNNRegressor,
    RandomForestRegressor,
    RegressionTree,
    RidgeRegression,
)
from repro.ml.metrics import r2_score


def linear_problem(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 3))
    return X, 3 * X[:, 0] - 2 * X[:, 1] + 0.5


def stepwise_problem(n=500, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 3))
    y = np.where(X[:, 0] > 0, 2.0, -1.0) + np.where(X[:, 1] > 0.5, 1.0, 0.0)
    return X, y


class TestRidge:
    def test_recovers_linear_coefficients(self):
        X, y = linear_problem()
        m = RidgeRegression(alpha=1e-8).fit(X, y)
        assert m.coef_ == pytest.approx([3, -2, 0], abs=1e-6)
        assert m.intercept_ == pytest.approx(0.5, abs=1e-6)

    def test_regularization_shrinks(self):
        X, y = linear_problem()
        loose = RidgeRegression(alpha=1e-8).fit(X, y)
        tight = RidgeRegression(alpha=1e3).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(np.zeros((1, 3)))


class TestKNN:
    def test_exact_on_training_points_k1(self):
        X, y = linear_problem()
        m = KNNRegressor(k=1).fit(X, y)
        np.testing.assert_allclose(m.predict(X), y)

    def test_weighted_beats_unweighted_on_smooth_target(self):
        X, y = linear_problem(400)
        Xv, yv = linear_problem(100, seed=1)
        uw = KNNRegressor(k=7).fit(X, y)
        w = KNNRegressor(k=7, weighted=True).fit(X, y)
        assert r2_score(w.predict(Xv), yv) >= r2_score(uw.predict(Xv), yv) - 0.02

    def test_k_larger_than_data_rejected(self):
        with pytest.raises(ValueError):
            KNNRegressor(k=10).fit(np.zeros((5, 2)), np.zeros(5))

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            KNNRegressor(k=0)


class TestRegressionTree:
    def test_fits_stepwise_function_exactly(self):
        X, y = stepwise_problem()
        m = RegressionTree(max_depth=4).fit(X, y)
        assert r2_score(m.predict(X), y) > 0.999

    def test_depth_zero_predicts_mean(self):
        X, y = linear_problem()
        m = RegressionTree(max_depth=0).fit(X, y)
        np.testing.assert_allclose(m.predict(X), y.mean())
        assert m.n_leaves == 1

    def test_min_samples_leaf_respected(self):
        X, y = stepwise_problem(50)
        m = RegressionTree(max_depth=20, min_samples_leaf=10).fit(X, y)
        # With >= 10 samples/leaf from 50 points, at most 5 leaves.
        assert m.n_leaves <= 5

    def test_depth_property(self):
        X, y = stepwise_problem()
        m = RegressionTree(max_depth=3).fit(X, y)
        assert 1 <= m.depth <= 3

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).uniform(-1, 1, (50, 2))
        m = RegressionTree().fit(X, np.ones(50))
        assert m.n_leaves == 1

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((0, 2)), np.zeros(0))

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=-1)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)


class TestForest:
    def test_beats_single_tree_generalization(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, (400, 4))
        y = np.sin(3 * X[:, 0]) + X[:, 1] * X[:, 2] + 0.1 * rng.standard_normal(400)
        Xv = rng.uniform(-1, 1, (200, 4))
        yv = np.sin(3 * Xv[:, 0]) + Xv[:, 1] * Xv[:, 2]
        tree = RegressionTree(max_depth=12, min_samples_leaf=1).fit(X, y)
        forest = RandomForestRegressor(n_trees=40, seed=0).fit(X, y)
        assert r2_score(forest.predict(Xv), yv) > r2_score(tree.predict(Xv), yv)

    def test_seed_reproducibility(self):
        X, y = stepwise_problem()
        a = RandomForestRegressor(n_trees=5, seed=3).fit(X, y).predict(X)
        b = RandomForestRegressor(n_trees=5, seed=3).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_bad_n_trees(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=0)


class TestBoosting:
    def test_fits_additive_structure(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, (500, 3))
        y = np.sin(3 * X[:, 0]) + 0.5 * X[:, 1]
        m = GradientBoostedTrees(n_stages=150, seed=0).fit(X, y)
        assert r2_score(m.predict(X), y) > 0.97

    def test_more_stages_fit_tighter(self):
        X, y = stepwise_problem()
        few = GradientBoostedTrees(n_stages=5, seed=0).fit(X, y)
        many = GradientBoostedTrees(n_stages=100, seed=0).fit(X, y)
        assert r2_score(many.predict(X), y) > r2_score(few.predict(X), y)

    def test_subsample_still_learns(self):
        X, y = stepwise_problem()
        m = GradientBoostedTrees(n_stages=100, subsample=0.5, seed=0).fit(X, y)
        assert r2_score(m.predict(X), y) > 0.9

    def test_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=1.5)
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_stages=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict(np.zeros((1, 3)))
