"""Tests for the measurement loop."""

import numpy as np
import pytest

from repro.core.measure import MeasurementSet, Measurer
from repro.kernels import ConvolutionKernel
from repro.runtime import Context
from repro.simulator import AMD_HD7970, NVIDIA_K40


@pytest.fixture(scope="module")
def spec():
    return ConvolutionKernel()


@pytest.fixture
def measurer(spec):
    return Measurer(Context(NVIDIA_K40, seed=0), spec, repeats=3)


def config_index(spec, **overrides):
    base = dict(
        wg_x=32, wg_y=4, ppt_x=2, ppt_y=2, use_image=0, use_local=0,
        pad=1, interleaved=1, unroll=0,
    )
    base.update(overrides)
    return spec.space.config(**base).index


class TestSingleMeasurement:
    def test_valid_config_measured(self, spec, measurer):
        i = config_index(spec)
        t = measurer.measure(i)
        assert t is not None and t > 0
        assert measurer.is_valid(i)

    def test_invalid_config_returns_none(self, spec):
        m = Measurer(Context(AMD_HD7970, seed=0), spec)
        i = config_index(spec, wg_x=64, wg_y=16)  # 1024 > 256
        assert m.measure(i) is None
        assert not m.is_valid(i)

    def test_true_time_cached_single_compile(self, spec, measurer):
        i = config_index(spec)
        measurer.measure(i)
        compile_after_first = measurer.context.ledger.compile_s
        measurer.measure(i)
        assert measurer.context.ledger.compile_s == compile_after_first

    def test_repeats_lower_measurement(self, spec):
        """best-of-5 should be stochastically below best-of-1."""
        m1 = Measurer(Context(NVIDIA_K40, seed=0), spec, repeats=1)
        m5 = Measurer(Context(NVIDIA_K40, seed=0), spec, repeats=5)
        i = config_index(spec)
        xs1 = np.array([m1.measure(i) for _ in range(100)])
        xs5 = np.array([m5.measure(i) for _ in range(100)])
        assert xs5.mean() < xs1.mean()

    def test_bad_repeats(self, spec):
        with pytest.raises(ValueError):
            Measurer(Context(NVIDIA_K40), spec, repeats=0)


class TestBatch:
    def test_batch_splits_valid_invalid(self, spec):
        m = Measurer(Context(AMD_HD7970, seed=0), spec)
        good = config_index(spec, wg_x=32, wg_y=4)
        bad = config_index(spec, wg_x=64, wg_y=16)
        ms = m.measure_batch([good, bad])
        assert ms.n_valid == 1 and ms.n_invalid == 1
        assert ms.indices[0] == good
        assert ms.invalid_indices[0] == bad
        assert ms.invalid_fraction == pytest.approx(0.5)

    def test_best(self, spec, measurer):
        ms = measurer.sample_and_measure(50, np.random.default_rng(0))
        i, t = ms.best()
        assert t == ms.times_s.min()
        assert i in set(ms.indices)

    def test_best_empty_raises(self):
        ms = MeasurementSet(
            indices=np.array([], dtype=np.int64),
            times_s=np.array([]),
            invalid_indices=np.array([1], dtype=np.int64),
        )
        with pytest.raises(ValueError):
            ms.best()
        assert ms.invalid_fraction == 1.0

    def test_merge(self, spec, measurer):
        a = measurer.sample_and_measure(20, np.random.default_rng(0))
        b = measurer.sample_and_measure(20, np.random.default_rng(1))
        m = a.merged_with(b)
        assert m.n_valid == a.n_valid + b.n_valid
        assert m.n_invalid == a.n_invalid + b.n_invalid

    def test_sample_and_measure_counts(self, spec, measurer):
        ms = measurer.sample_and_measure(100, np.random.default_rng(2))
        assert ms.n_valid + ms.n_invalid == 100

    def test_empty_invalid_fraction_zero(self):
        ms = MeasurementSet(
            indices=np.array([], dtype=np.int64),
            times_s=np.array([]),
            invalid_indices=np.array([], dtype=np.int64),
        )
        assert ms.invalid_fraction == 0.0
