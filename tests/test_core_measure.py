"""Tests for the measurement loop."""

import numpy as np
import pytest

from repro.core.measure import MeasurementSet, Measurer
from repro.kernels import ConvolutionKernel
from repro.runtime import Context
from repro.simulator import AMD_HD7970, NVIDIA_K40


@pytest.fixture(scope="module")
def spec():
    return ConvolutionKernel()


@pytest.fixture
def measurer(spec):
    return Measurer(Context(NVIDIA_K40, seed=0), spec, repeats=3)


def config_index(spec, **overrides):
    base = dict(
        wg_x=32, wg_y=4, ppt_x=2, ppt_y=2, use_image=0, use_local=0,
        pad=1, interleaved=1, unroll=0,
    )
    base.update(overrides)
    return spec.space.config(**base).index


class TestSingleMeasurement:
    def test_valid_config_measured(self, spec, measurer):
        i = config_index(spec)
        t = measurer.measure(i)
        assert t is not None and t > 0
        assert measurer.is_valid(i)

    def test_invalid_config_returns_none(self, spec):
        m = Measurer(Context(AMD_HD7970, seed=0), spec)
        i = config_index(spec, wg_x=64, wg_y=16)  # 1024 > 256
        assert m.measure(i) is None
        assert not m.is_valid(i)

    def test_true_time_cached_single_compile(self, spec, measurer):
        i = config_index(spec)
        measurer.measure(i)
        compile_after_first = measurer.context.ledger.compile_s
        measurer.measure(i)
        assert measurer.context.ledger.compile_s == compile_after_first

    def test_repeats_lower_measurement(self, spec):
        """best-of-5 should be stochastically below best-of-1."""
        m1 = Measurer(Context(NVIDIA_K40, seed=0), spec, repeats=1)
        m5 = Measurer(Context(NVIDIA_K40, seed=0), spec, repeats=5)
        i = config_index(spec)
        xs1 = np.array([m1.measure(i) for _ in range(100)])
        xs5 = np.array([m5.measure(i) for _ in range(100)])
        assert xs5.mean() < xs1.mean()

    def test_bad_repeats(self, spec):
        with pytest.raises(ValueError):
            Measurer(Context(NVIDIA_K40), spec, repeats=0)


class TestBatch:
    def test_batch_splits_valid_invalid(self, spec):
        m = Measurer(Context(AMD_HD7970, seed=0), spec)
        good = config_index(spec, wg_x=32, wg_y=4)
        bad = config_index(spec, wg_x=64, wg_y=16)
        ms = m.measure_batch([good, bad])
        assert ms.n_valid == 1 and ms.n_invalid == 1
        assert ms.indices[0] == good
        assert ms.invalid_indices[0] == bad
        assert ms.invalid_fraction == pytest.approx(0.5)

    def test_best(self, spec, measurer):
        ms = measurer.sample_and_measure(50, np.random.default_rng(0))
        i, t = ms.best()
        assert t == ms.times_s.min()
        assert i in set(ms.indices)

    def test_best_empty_raises(self):
        ms = MeasurementSet(
            indices=np.array([], dtype=np.int64),
            times_s=np.array([]),
            invalid_indices=np.array([1], dtype=np.int64),
        )
        with pytest.raises(ValueError):
            ms.best()
        assert ms.invalid_fraction == 1.0

    def test_merge(self, spec, measurer):
        a = measurer.sample_and_measure(20, np.random.default_rng(0))
        b = measurer.sample_and_measure(20, np.random.default_rng(1))
        m = a.merged_with(b)
        assert m.n_valid == a.n_valid + b.n_valid
        assert m.n_invalid == a.n_invalid + b.n_invalid

    def test_sample_and_measure_counts(self, spec, measurer):
        ms = measurer.sample_and_measure(100, np.random.default_rng(2))
        assert ms.n_valid + ms.n_invalid == 100

    def test_empty_invalid_fraction_zero(self):
        ms = MeasurementSet(
            indices=np.array([], dtype=np.int64),
            times_s=np.array([]),
            invalid_indices=np.array([], dtype=np.int64),
        )
        assert ms.invalid_fraction == 0.0


class TestLedgerAccounting:
    """Every measurement bills exactly ``repeats`` launches.

    Regression for a bug where cache-served re-measurements were charged
    ``repeats - 1`` launches: the probe launch is only billed by the runtime
    on the *first* (fresh) measurement, so re-measures must add all
    ``repeats`` themselves.  Pinned on a zero-noise device so the expected
    totals are exact multiples of the true time.
    """

    @pytest.fixture
    def quiet_measurer(self, spec):
        import dataclasses

        quiet = dataclasses.replace(NVIDIA_K40, timing_noise_sigma=0.0)
        return Measurer(Context(quiet, seed=0), spec, repeats=4)

    def test_fresh_measurement_bills_repeats_launches(self, spec, quiet_measurer):
        m = quiet_measurer
        i = config_index(spec)
        value = m.measure(i)
        true = m.true_time(i)
        assert value == true  # zero noise: best-of == true
        assert m.context.ledger.run_s == pytest.approx(4 * true, rel=1e-12)

    def test_cached_re_measure_bills_repeats_launches(self, spec, quiet_measurer):
        m = quiet_measurer
        i = config_index(spec)
        m.measure(i)
        true = m.true_time(i)
        m.measure(i)
        assert m.context.ledger.run_s == pytest.approx(8 * true, rel=1e-12)
        m.measure(i)
        assert m.context.ledger.run_s == pytest.approx(12 * true, rel=1e-12)

    def test_db_hit_bills_nothing(self, spec):
        from repro.core.results import MeasurementDB

        db = MeasurementDB()
        i = config_index(spec)
        db.put(spec.name, NVIDIA_K40.name, i, 42e-3)
        m = Measurer(Context(NVIDIA_K40, seed=0), spec, db=db)
        assert m.measure(i) == 42e-3
        assert m.context.ledger.total_s == 0.0
        assert m.stats.n_db_hits == 1

    def test_invalid_db_hit_returns_none_without_cost(self, spec):
        from repro.core.results import MeasurementDB

        db = MeasurementDB()
        i = config_index(spec)
        db.put(spec.name, NVIDIA_K40.name, i, None)
        m = Measurer(Context(NVIDIA_K40, seed=0), spec, db=db)
        assert m.measure(i) is None
        assert m.context.ledger.total_s == 0.0
        assert m.stats.n_invalid == 1
