"""Tests for the experiment scheduler: plan structure, serial/parallel
equivalence, and the compute-once oracle-store contract."""

import pytest

from repro.experiments.oracle_store import OracleStore
from repro.experiments.presets import Preset
from repro.experiments.run_all import EXPERIMENTS, run_all
from repro.experiments.scheduler import (
    Unit,
    build_plan,
    execute_plan,
    merge_results,
)

#: Tiny but axis-complete preset so scheduler tests stay in seconds.
MICRO = Preset(
    name="micro",
    training_sizes=(100,),
    holdout=80,
    repeats=1,
    tuner_sizes=(100,),
    tuner_m=(10,),
    fig14_train=200,
    fig14_m=30,
    fig14_random_budget=500,
    sec7_n_train=150,
    sec7_holdout=100,
    sec7_n_base=40,
    sec7_invalid_n=800,
)


class TestBuildPlan:
    def test_full_plan_is_well_formed(self):
        units = build_plan(list(EXPERIMENTS), MICRO, 0)
        uids = [u.uid for u in units]
        assert len(uids) == len(set(uids)), "unit ids must be unique"
        seen = set()
        for u in units:
            assert set(u.deps) <= seen, f"{u.uid} depends on later units"
            seen.add(u.uid)
        # Every registered experiment contributes at least one unit.
        assert {u.exp_id for u in units} >= set(EXPERIMENTS)

    def test_fig01_waits_for_all_three_warmups(self):
        units = build_plan(["fig01"], MICRO, 0)
        fig01 = next(u for u in units if u.exp_id == "fig01")
        assert len(fig01.deps) == 3
        assert all(d.startswith("warmup/convolution@") for d in fig01.deps)

    def test_warmups_shared_across_experiments(self):
        units = build_plan(["fig01", "fig11-13"], MICRO, 0)
        warmups = [u for u in units if u.kind == "warmup"]
        assert len(warmups) == 3  # one per device, not per experiment

    def test_no_warmups_when_disabled(self):
        units = build_plan(["fig01", "fig11-13"], MICRO, 0, warmup=False)
        assert all(u.kind != "warmup" for u in units)
        assert all(u.deps == () for u in units)

    def test_per_device_decomposition(self):
        units = build_plan(["fig11-13", "sec7"], MICRO, 0, warmup=False)
        assert sum(u.exp_id == "fig11-13" for u in units) == 3
        sec7 = [u.uid for u in units if u.exp_id == "sec7"]
        assert "sec7/invalid" in sec7 and len(sec7) == 7


class TestExecutePlan:
    def test_unknown_dependency_rejected(self):
        bad = [Unit("a", "tables", "experiment", ("tables",), deps=("ghost",))]
        with pytest.raises(ValueError, match="ghost"):
            execute_plan(bad, MICRO, 0)

    def test_serial_matches_direct_run(self):
        from repro.experiments import sec7_discussion

        units = build_plan(["sec7"], MICRO, 0)
        outcomes = execute_plan(units, MICRO, 0)
        merged = merge_results("sec7", outcomes, MICRO)
        direct = sec7_discussion.run(preset=MICRO, seed=0)
        assert sec7_discussion.format_text(merged) == sec7_discussion.format_text(direct)

    def test_parallel_matches_serial(self):
        serial = run_all(preset=MICRO, only=["tables", "fig02"], stream=None)
        parallel = run_all(
            preset=MICRO, only=["tables", "fig02"], stream=None, jobs=2
        )
        assert serial == parallel


@pytest.mark.slow
class TestStoreContract:
    def test_full_tables_computed_exactly_once(self, tmp_path):
        from repro.experiments import fig01_motivation

        units = build_plan(["fig01"], MICRO, 0)
        cold = OracleStore(tmp_path / "store")
        out1 = execute_plan(units, MICRO, 0, store=cold)
        assert cold.stats["full_miss"] == 3
        assert cold.stats["full_saved"] == 3

        warm = OracleStore(tmp_path / "store")
        out2 = execute_plan(units, MICRO, 0, store=warm)
        assert warm.stats["full_miss"] == 0
        assert warm.stats["full_saved"] == 0
        assert warm.stats["full_hit"] >= 3

        r1 = merge_results("fig01", out1, MICRO)
        r2 = merge_results("fig01", out2, MICRO)
        assert fig01_motivation.format_text(r1) == fig01_motivation.format_text(r2)
        for d in r1["devices"]:
            assert r1["best"][d] == r2["best"][d]
            assert r1["matrix"][d] == r2["matrix"][d]


class TestFaultsThreading:
    """Regression: ``--faults`` used to stop at the CLI — ``build_plan`` /
    ``execute_plan`` dropped it on the floor, so batch experiment runs were
    silently fault-free even when a profile was requested."""

    def test_build_plan_stamps_faults_on_runtime_units(self):
        units = build_plan(
            ["fig01", "fig04-06", "cost"], MICRO, 0, faults="flaky-gpu"
        )
        by_kind = {}
        for u in units:
            by_kind.setdefault(u.kind, []).append(u)
        # Ground-truth warm-ups must never be fault-injected.
        assert all(u.faults is None for u in by_kind["warmup"])
        assert all(u.faults == "flaky-gpu" for u in by_kind["fig04-06-curve"])
        assert all(u.faults == "flaky-gpu" for u in by_kind["experiment"])

    def test_build_plan_default_is_fault_free(self):
        units = build_plan(["fig04-06"], MICRO, 0)
        assert all(u.faults is None for u in units)

    def test_faulted_unit_changes_measured_curve(self):
        from repro.experiments.oracle_store import OracleProvider

        unit = Unit(
            "fig04-06/intel/convolution",
            "fig04-06",
            "fig04-06-curve",
            ("intel", "convolution"),
        )
        clean = execute_plan([unit], MICRO, 0)[unit.uid].result
        # p_outlier must stay < 1.0: at 1.0 every measurement is scaled
        # by exactly outlier_factor, a uniform factor the log transform
        # and y-scaler absorb, leaving the relative-error curve
        # unchanged up to rounding.  A partial rate corrupts a random
        # subset and genuinely moves the curve.
        noisy_unit = Unit(
            unit.uid, unit.exp_id, unit.kind, unit.payload,
            faults="noisy-rig:p_outlier=0.5,outlier_factor=50",
        )
        noisy = execute_plan([noisy_unit], MICRO, 0)[unit.uid].result
        assert clean["errors"] != noisy["errors"]

        # None-faults execution stays bit-identical to the historical path.
        again = execute_plan([unit], MICRO, 0)[unit.uid].result
        assert clean == again
