"""Tests for kernel-spec common machinery."""

import pytest

from repro.kernels.base import padded_threads, resolve_unroll
from repro.simulator.devices import AMD_HD7970, INTEL_I7_3770, NVIDIA_K40


class TestPaddedThreads:
    def test_exact_fit(self):
        assert padded_threads(2048, 2, 32) == 1024

    def test_rounds_up_to_workgroup(self):
        assert padded_threads(2048, 128, 32) == 32  # needs 16, pads to 32

    def test_absurd_blocking_overprovisions(self):
        # 128 px/thread with 128-wide groups on a 2048 image: 16 needed,
        # 128 launched — slow, not invalid (matches real parameterized code).
        assert padded_threads(2048, 128, 128) == 128

    def test_single_pixel(self):
        assert padded_threads(1, 1, 1) == 1


class TestResolveUnroll:
    def test_factor_one_is_identity(self):
        assert resolve_unroll(1, AMD_HD7970, True, ("k", (1,))) == 1

    def test_manual_unroll_always_honoured(self):
        for f in (2, 4, 8, 16):
            assert resolve_unroll(f, AMD_HD7970, False, ("k", (f,))) == f

    def test_driver_unroll_deterministic(self):
        key = ("convolution", (32, 8, 2, 2, 0, 1, 1, 0, 1))
        a = resolve_unroll(8, AMD_HD7970, True, key)
        b = resolve_unroll(8, AMD_HD7970, True, key)
        assert a == b
        assert a in (1, 8)

    def test_amd_driver_drops_more_unrolls(self):
        """§7: the AMD driver's pragma unrolling is the least reliable."""
        dropped = {}
        for dev in (AMD_HD7970, NVIDIA_K40, INTEL_I7_3770):
            misses = sum(
                1
                for i in range(400)
                if resolve_unroll(8, dev, True, ("k", (i,))) == 1
            )
            dropped[dev.name] = misses
        assert dropped["AMD HD 7970"] > dropped["Nvidia K40"]
        assert dropped["AMD HD 7970"] > dropped["Intel i7 3770"]

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            resolve_unroll(0, NVIDIA_K40, True, ("k", (1,)))


class TestSpecProtocol:
    def test_config_tuple_orders_by_space(self, small_convolution):
        cfg = small_convolution.space[100]
        assert small_convolution.config_tuple(cfg) == cfg.as_tuple()
        assert small_convolution.config_tuple(dict(cfg)) == cfg.as_tuple()

    def test_repr_mentions_space_size(self, small_convolution):
        assert str(small_convolution.space.size) in repr(small_convolution)

    def test_unroll_of(self, small_convolution, small_raycasting, small_stereo):
        c = small_convolution.space.config(
            wg_x=8, wg_y=8, ppt_x=1, ppt_y=1, use_image=0, use_local=0,
            pad=0, interleaved=0, unroll=1,
        )
        assert small_convolution.unroll_of(c) == 25  # full 5x5 tap unroll
        r = small_raycasting.space[0]
        assert small_raycasting.unroll_of(r) == r["unroll"]
        s = small_stereo.space[50]
        assert small_stereo.unroll_of(s) == (
            s["unroll_disp"] * s["unroll_diff_x"] * s["unroll_diff_y"]
        )
