"""Tests for the data-splitting / evaluation utilities."""

import numpy as np
import pytest

from repro.ml import RidgeRegression
from repro.ml.metrics import mean_squared_error
from repro.ml.model_selection import (
    cross_val_score,
    k_fold_indices,
    learning_curve,
    train_test_split,
)


def linear_data(n=100, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 3))
    return X, 2 * X[:, 0] - X[:, 1]


class TestTrainTestSplit:
    def test_sizes_and_disjointness(self):
        X, y = linear_data(100)
        Xt, yt, Xv, yv = train_test_split(X, y, 0.2, np.random.default_rng(0))
        assert Xv.shape[0] == 20 and Xt.shape[0] == 80
        assert yt.shape[0] == 80 and yv.shape[0] == 20
        # Rows are a partition of the original (by multiset of first col).
        merged = sorted(np.concatenate([Xt[:, 0], Xv[:, 0]]).tolist())
        assert merged == sorted(X[:, 0].tolist())

    def test_deterministic_with_rng(self):
        X, y = linear_data(50)
        a = train_test_split(X, y, 0.3, np.random.default_rng(1))
        b = train_test_split(X, y, 0.3, np.random.default_rng(1))
        np.testing.assert_array_equal(a[0], b[0])

    def test_validation(self):
        X, y = linear_data(10)
        with pytest.raises(ValueError):
            train_test_split(X, y, 0.0)
        with pytest.raises(ValueError):
            train_test_split(X, y[:5], 0.2)
        with pytest.raises(ValueError):
            train_test_split(X[:1], y[:1], 0.9)


class TestKFold:
    def test_folds_partition_everything(self):
        folds = list(k_fold_indices(23, 5, np.random.default_rng(0)))
        assert len(folds) == 5
        all_val = np.concatenate([v for _, v in folds])
        assert sorted(all_val.tolist()) == list(range(23))
        for train, val in folds:
            assert set(train.tolist()).isdisjoint(val.tolist())
            assert len(train) + len(val) == 23

    def test_validation(self):
        with pytest.raises(ValueError):
            list(k_fold_indices(10, 1))
        with pytest.raises(ValueError):
            list(k_fold_indices(3, 5))


class TestCrossValScore:
    def test_linear_model_scores_near_zero_mse(self):
        X, y = linear_data(200)
        scores = cross_val_score(
            lambda: RidgeRegression(alpha=1e-10), X, y, mean_squared_error,
            k=5, rng=np.random.default_rng(0),
        )
        assert scores.shape == (5,)
        assert np.all(scores < 1e-10)


class TestLearningCurve:
    def test_error_decreases_with_size(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(-1, 1, (400, 5))
        y = X @ rng.uniform(-1, 1, 5) + 0.05 * rng.standard_normal(400)
        curve = learning_curve(
            RidgeRegression, X, y, sizes=(10, 50, 300),
            metric=mean_squared_error, holdout=100,
            rng=np.random.default_rng(0),
        )
        assert curve[300] < curve[10]
        assert set(curve) == {10, 50, 300}

    def test_validation(self):
        X, y = linear_data(50)
        with pytest.raises(ValueError):
            learning_curve(RidgeRegression, X, y, (10,), mean_squared_error, 0)
        with pytest.raises(ValueError):
            learning_curve(RidgeRegression, X, y, (45,), mean_squared_error, 10)
