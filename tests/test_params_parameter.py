"""Unit tests for repro.params.parameter."""

import pytest

from repro.params import Parameter, boolean, choice, pow2
from repro.params.parameter import KIND_BOOL, KIND_CHOICE, KIND_POW2


class TestPow2:
    def test_range_expansion(self):
        p = pow2("wg_x", 1, 128)
        assert p.values == (1, 2, 4, 8, 16, 32, 64, 128)
        assert p.kind == KIND_POW2
        assert p.cardinality == 8

    def test_single_value_range(self):
        assert pow2("x", 4, 4).values == (4,)

    def test_rejects_non_pow2_bounds(self):
        with pytest.raises(ValueError):
            pow2("x", 3, 8)
        with pytest.raises(ValueError):
            pow2("x", 1, 6)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            pow2("x", 8, 4)

    def test_rejects_zero_lo(self):
        with pytest.raises(ValueError):
            pow2("x", 0, 8)


class TestBoolean:
    def test_values(self):
        p = boolean("use_local")
        assert p.values == (0, 1)
        assert p.kind == KIND_BOOL
        assert len(p) == 2


class TestChoice:
    def test_values_preserved_in_order(self):
        p = choice("unroll", (1, 2, 4, 8, 16))
        assert p.values == (1, 2, 4, 8, 16)
        assert p.kind == KIND_CHOICE

    def test_non_numeric_values(self):
        p = choice("mode", ("a", "b", "c"))
        assert p.index_of("b") == 1


class TestParameterValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Parameter("", (1, 2))

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            Parameter("x", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError):
            Parameter("x", (1, 2, 1))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Parameter("x", (1, 2), kind="weird")

    def test_pow2_kind_validates_values(self):
        with pytest.raises(ValueError):
            Parameter("x", (1, 3), kind=KIND_POW2)

    def test_bool_kind_validates_values(self):
        with pytest.raises(ValueError):
            Parameter("x", (0, 2), kind=KIND_BOOL)

    def test_list_values_coerced_to_tuple(self):
        p = Parameter("x", [1, 2, 3])
        assert p.values == (1, 2, 3)


class TestIndexOf:
    def test_roundtrip(self):
        p = pow2("x", 1, 32)
        for i, v in enumerate(p.values):
            assert p.index_of(v) == i

    def test_illegal_value_raises_with_context(self):
        p = pow2("x", 1, 32)
        with pytest.raises(ValueError, match="x"):
            p.index_of(3)
