"""Tests for the iterative round-based tuner."""

import numpy as np
import pytest

from repro.core.iterative import IterativeSettings, IterativeTuner
from repro.core.tuner import MLAutoTuner, TunerSettings
from repro.experiments.oracle import TrueTimeOracle
from repro.kernels import ConvolutionKernel
from repro.runtime import Context
from repro.simulator import NVIDIA_K40


class TestSettings:
    def test_budget_split(self):
        s = IterativeSettings(total_budget=1000, rounds=3, initial_fraction=0.4)
        assert s.initial_batch == 400
        assert s.round_batch == 200

    def test_validation(self):
        with pytest.raises(ValueError):
            IterativeSettings(total_budget=10)
        with pytest.raises(ValueError):
            IterativeSettings(rounds=0)
        with pytest.raises(ValueError):
            IterativeSettings(initial_fraction=1.0)
        with pytest.raises(ValueError):
            IterativeSettings(exploration=1.0)


class TestIterativeTuner:
    @pytest.fixture(scope="class")
    def spec(self):
        return ConvolutionKernel()

    def test_finds_good_configuration(self, spec):
        ctx = Context(NVIDIA_K40, seed=6)
        tuner = IterativeTuner(
            ctx, spec, IterativeSettings(total_budget=600, rounds=2)
        )
        result = tuner.tune(np.random.default_rng(6), model_seed=6)
        assert not result.failed
        oracle = TrueTimeOracle(spec, NVIDIA_K40)
        _, opt = oracle.global_optimum()
        assert oracle.time_of(result.best_index) / opt < 1.6

    def test_history_spans_all_rounds(self, spec):
        ctx = Context(NVIDIA_K40, seed=6)
        settings = IterativeSettings(total_budget=300, rounds=3)
        tuner = IterativeTuner(ctx, spec, settings)
        tuner.tune(np.random.default_rng(6), model_seed=6)
        assert len(tuner.history) == 4  # initial + 3 rounds
        total = sum(ms.n_valid + ms.n_invalid for ms in tuner.history)
        # Exploit proposals are deduplicated against history, so the total
        # can fall slightly short of the nominal budget but never over it.
        assert total <= settings.total_budget
        assert total >= int(0.8 * settings.total_budget)

    def test_never_remeasures_for_exploitation(self, spec):
        ctx = Context(NVIDIA_K40, seed=8)
        tuner = IterativeTuner(
            ctx, spec, IterativeSettings(total_budget=300, rounds=2, exploration=0.0)
        )
        tuner.tune(np.random.default_rng(8), model_seed=8)
        seen = set()
        for ms in tuner.history:
            batch = set(int(i) for i in ms.indices) | set(
                int(i) for i in ms.invalid_indices
            )
            assert not (batch & seen)
            seen |= batch

    def test_matches_one_shot_quality_at_equal_budget(self, spec):
        """At the same total measurement budget, iterative refinement
        should at least match the one-shot pipeline on average."""
        oracle = TrueTimeOracle(spec, NVIDIA_K40)
        _, opt = oracle.global_optimum()
        one_shot, iterative = [], []
        for seed in (0, 1, 2):
            ctx = Context(NVIDIA_K40, seed=seed)
            r1 = MLAutoTuner(
                ctx, spec, TunerSettings(n_train=500, m_candidates=100)
            ).tune(np.random.default_rng(seed), model_seed=seed)
            if not r1.failed:
                one_shot.append(oracle.time_of(r1.best_index) / opt)
            ctx2 = Context(NVIDIA_K40, seed=seed)
            r2 = IterativeTuner(
                ctx2, spec, IterativeSettings(total_budget=600, rounds=2)
            ).tune(np.random.default_rng(seed), model_seed=seed)
            if not r2.failed:
                iterative.append(oracle.time_of(r2.best_index) / opt)
        assert iterative, "iterative tuner failed on every seed"
        assert np.mean(iterative) < np.mean(one_shot) * 1.15
