"""Tests for the measurement-noise model and the stable-hash jitter."""

import math

import numpy as np
import pytest

from repro.simulator.devices import INTEL_I7_3770, NVIDIA_K40
from repro.simulator.hashing import (
    lognormal_factor,
    stable_hash64,
    structured_jitter,
    unit_normal,
    unit_uniform,
)
from repro.simulator.noise import CostLedger, MeasurementModel, compile_time


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("a", 1, (2, 3)) == stable_hash64("a", 1, (2, 3))

    def test_sensitive_to_any_part(self):
        base = stable_hash64("a", 1, (2, 3))
        assert stable_hash64("a", 1, (2, 4)) != base
        assert stable_hash64("b", 1, (2, 3)) != base

    def test_not_confused_by_concatenation(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert stable_hash64("ab", "c") != stable_hash64("a", "bc")

    def test_unit_uniform_in_range(self):
        for i in range(100):
            u = unit_uniform("key", i)
            assert 0.0 <= u < 1.0

    def test_unit_normal_clipped_and_standardish(self):
        zs = np.array([unit_normal("key", i) for i in range(2000)])
        assert np.all(np.abs(zs) <= 4.0)
        assert abs(zs.mean()) < 0.1
        assert abs(zs.std() - 1.0) < 0.1


class TestJitterFactors:
    def test_lognormal_identity_at_zero_sigma(self):
        assert lognormal_factor(0.0, "x") == 1.0

    def test_lognormal_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            lognormal_factor(-0.1, "x")

    def test_structured_jitter_deterministic(self):
        a = structured_jitter(0.1, 0.05, "dev", "conv", (1, 2, 3, 4, 0, 1))
        b = structured_jitter(0.1, 0.05, "dev", "conv", (1, 2, 3, 4, 0, 1))
        assert a == b

    def test_structured_component_shared_within_group(self):
        """Configs sharing all subgroups differ only by the idiosyncratic
        part; with sigma_idio=0 they get identical jitter."""
        a = structured_jitter(0.1, 0.0, "dev", "conv", (1, 2, 3, 4, 0, 1))
        b = structured_jitter(0.1, 0.0, "dev", "conv", (1, 2, 3, 4, 0, 1))
        assert a == b
        # Changing a switch moves only the third group's draw.
        c = structured_jitter(0.1, 0.0, "dev", "conv", (1, 2, 3, 4, 1, 1))
        assert c != a

    def test_structured_jitter_magnitude(self):
        vals = [
            structured_jitter(0.1, 0.05, "dev", "conv", (i, i + 1, i + 2, i % 3, 0))
            for i in range(500)
        ]
        logs = np.log(vals)
        total = math.sqrt(0.1**2 + 0.05**2)
        assert abs(logs.std() - total) < 0.03


class TestCompileTime:
    def test_base_time(self):
        assert compile_time(NVIDIA_K40) == pytest.approx(0.55)

    def test_grows_with_unroll(self):
        assert compile_time(NVIDIA_K40, 16) > compile_time(NVIDIA_K40, 1)

    def test_bad_unroll_rejected(self):
        with pytest.raises(ValueError):
            compile_time(NVIDIA_K40, 0)


class TestMeasurementModel:
    def test_observe_unbiased_in_log(self):
        m = MeasurementModel(NVIDIA_K40, np.random.default_rng(0))
        obs = m.observe_many(1.0, 20000)
        assert abs(np.log(obs).mean()) < 0.01

    def test_cpu_noise_tighter(self):
        rng = np.random.default_rng(0)
        cpu = MeasurementModel(INTEL_I7_3770, rng).observe_many(1.0, 5000)
        gpu = MeasurementModel(NVIDIA_K40, np.random.default_rng(0)).observe_many(
            1.0, 5000
        )
        assert np.log(cpu).std() < np.log(gpu).std()

    def test_best_of_is_min_biased(self):
        m = MeasurementModel(NVIDIA_K40, np.random.default_rng(0))
        singles = np.array([m.observe(1.0) for _ in range(500)])
        bests = np.array([m.best_of(1.0, 5) for _ in range(500)])
        assert bests.mean() < singles.mean()

    def test_nonpositive_time_rejected(self):
        m = MeasurementModel(NVIDIA_K40)
        with pytest.raises(ValueError):
            m.observe(0.0)

    def test_bad_repeats_rejected(self):
        m = MeasurementModel(NVIDIA_K40)
        with pytest.raises(ValueError):
            m.observe_many(1.0, 0)

    def test_seeded_reproducibility(self):
        a = MeasurementModel(NVIDIA_K40, np.random.default_rng(7)).observe(1.0)
        b = MeasurementModel(NVIDIA_K40, np.random.default_rng(7)).observe(1.0)
        assert a == b


class TestCostLedger:
    def test_total_and_merge(self):
        a = CostLedger(compile_s=1.0, run_s=2.0, failed_s=0.5)
        b = CostLedger(compile_s=0.5, run_s=1.0, failed_s=0.25)
        m = a.merge(b)
        assert m.total_s == pytest.approx(5.25)
        assert a.total_s == pytest.approx(3.5)  # merge does not mutate
