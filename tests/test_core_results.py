"""Tests for result records and the measurement store."""

import math

import pytest

from repro.core.results import MeasurementDB, TuningResult


def make_result(**overrides):
    base = dict(
        kernel="convolution",
        device="Nvidia K40",
        best_index=42,
        best_time_s=0.002,
        n_trained=950,
        n_stage2=100,
        stage2_invalid=5,
        evaluated_fraction=0.008,
        total_cost_s=1800.0,
    )
    base.update(overrides)
    return TuningResult(**base)


class TestTuningResult:
    def test_success_flags(self):
        r = make_result()
        assert not r.failed
        assert r.slowdown_vs(0.001) == pytest.approx(2.0)

    def test_failure_mode(self):
        r = make_result(best_index=-1, best_time_s=float("nan"))
        assert r.failed
        assert math.isnan(r.slowdown_vs(0.001))

    def test_slowdown_rejects_bad_optimum(self):
        with pytest.raises(ValueError):
            make_result().slowdown_vs(-1.0)


class TestMeasurementDB:
    def test_put_get_roundtrip(self):
        db = MeasurementDB()
        db.put("convolution", "Nvidia K40", 7, 0.005)
        db.put("convolution", "Nvidia K40", 8, None)
        assert db.get("convolution", "Nvidia K40", 7) == 0.005
        assert db.get("convolution", "Nvidia K40", 8) is None
        assert db.get("convolution", "Nvidia K40", 9) is None
        assert len(db) == 2

    def test_keys_are_kernel_device_scoped(self):
        db = MeasurementDB()
        db.put("convolution", "Nvidia K40", 7, 0.005)
        db.put("stereo", "Nvidia K40", 7, 0.009)
        assert db.get("convolution", "Nvidia K40", 7) != db.get(
            "stereo", "Nvidia K40", 7
        )

    def test_persistence(self, tmp_path):
        path = tmp_path / "m.json"
        db = MeasurementDB(path)
        db.put("convolution", "AMD HD 7970", 3, 0.004)
        db.put("convolution", "AMD HD 7970", 4, None)
        db.save()
        again = MeasurementDB(path)
        assert again.get("convolution", "AMD HD 7970", 3) == 0.004
        assert again.get("convolution", "AMD HD 7970", 4) is None
        # Integer keys survive the JSON round trip.
        assert 3 in again.table("convolution", "AMD HD 7970")

    def test_save_requires_path(self):
        with pytest.raises(RuntimeError):
            MeasurementDB().save()

    def test_best_skips_invalid(self):
        db = MeasurementDB()
        db.put("k", "d", 1, 0.5)
        db.put("k", "d", 2, 0.3)
        db.put("k", "d", 3, None)
        assert db.best("k", "d") == (2, 0.3)

    def test_best_empty_raises(self):
        db = MeasurementDB()
        db.put("k", "d", 3, None)
        with pytest.raises(ValueError):
            db.best("k", "d")
        with pytest.raises(ValueError):
            db.best("k", "other")
