"""Tests for result records and the measurement store."""

import math

import pytest

from repro.core.results import MeasurementDB, TuningResult


def make_result(**overrides):
    base = dict(
        kernel="convolution",
        device="Nvidia K40",
        best_index=42,
        best_time_s=0.002,
        n_trained=950,
        n_stage2=100,
        stage2_invalid=5,
        evaluated_fraction=0.008,
        total_cost_s=1800.0,
    )
    base.update(overrides)
    return TuningResult(**base)


class TestTuningResult:
    def test_success_flags(self):
        r = make_result()
        assert not r.failed
        assert r.slowdown_vs(0.001) == pytest.approx(2.0)

    def test_failure_mode(self):
        r = make_result(best_index=-1, best_time_s=float("nan"))
        assert r.failed
        assert math.isnan(r.slowdown_vs(0.001))

    def test_slowdown_rejects_bad_optimum(self):
        with pytest.raises(ValueError):
            make_result().slowdown_vs(-1.0)


class TestMeasurementDB:
    def test_put_get_roundtrip(self):
        db = MeasurementDB()
        db.put("convolution", "Nvidia K40", 7, 0.005)
        db.put("convolution", "Nvidia K40", 8, None)
        assert db.get("convolution", "Nvidia K40", 7) == 0.005
        assert db.get("convolution", "Nvidia K40", 8) is None
        assert db.get("convolution", "Nvidia K40", 9) is None
        assert len(db) == 2

    def test_keys_are_kernel_device_scoped(self):
        db = MeasurementDB()
        db.put("convolution", "Nvidia K40", 7, 0.005)
        db.put("stereo", "Nvidia K40", 7, 0.009)
        assert db.get("convolution", "Nvidia K40", 7) != db.get(
            "stereo", "Nvidia K40", 7
        )

    def test_persistence(self, tmp_path):
        path = tmp_path / "m.json"
        db = MeasurementDB(path)
        db.put("convolution", "AMD HD 7970", 3, 0.004)
        db.put("convolution", "AMD HD 7970", 4, None)
        db.save()
        again = MeasurementDB(path)
        assert again.get("convolution", "AMD HD 7970", 3) == 0.004
        assert again.get("convolution", "AMD HD 7970", 4) is None
        # Integer keys survive the JSON round trip.
        assert 3 in again.table("convolution", "AMD HD 7970")

    def test_save_requires_path(self):
        with pytest.raises(RuntimeError):
            MeasurementDB().save()

    def test_best_skips_invalid(self):
        db = MeasurementDB()
        db.put("k", "d", 1, 0.5)
        db.put("k", "d", 2, 0.3)
        db.put("k", "d", 3, None)
        assert db.best("k", "d") == (2, 0.3)

    def test_best_empty_raises(self):
        db = MeasurementDB()
        db.put("k", "d", 3, None)
        with pytest.raises(ValueError):
            db.best("k", "d")
        with pytest.raises(ValueError):
            db.best("k", "other")


class TestDurableCampaignCache:
    def test_nan_and_infinity_roundtrip_strict_json(self, tmp_path):
        """Non-finite values survive save/load through *valid* JSON."""
        import json

        path = tmp_path / "weird.json"
        db = MeasurementDB(path)
        db.put("k", "d", 0, float("nan"))
        db.put("k", "d", 1, float("inf"))
        db.put("k", "d", 2, None)
        db.put("k", "d", 3, 1.5e-3)
        db.save()
        # The file is standard JSON (no bare NaN/Infinity tokens).
        json.loads(path.read_text(), parse_constant=lambda c: pytest.fail(
            f"non-standard JSON constant {c!r} in saved file"))
        back = MeasurementDB(path)
        assert math.isnan(back.get("k", "d", 0))
        assert back.get("k", "d", 1) == float("inf")
        assert back.get("k", "d", 2) is None
        assert back.get("k", "d", 3) == 1.5e-3
        assert len(back) == 4

    def test_legacy_bare_nan_files_still_load(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text('{"k@d": {"7": NaN, "8": null, "9": 0.25}}')
        db = MeasurementDB(path)
        assert math.isnan(db.get("k", "d", 7))
        assert db.get("k", "d", 8) is None
        assert db.get("k", "d", 9) == 0.25

    def test_interrupted_save_preserves_previous_state(self, tmp_path, monkeypatch):
        import os

        path = tmp_path / "db.json"
        db = MeasurementDB(path)
        db.put("k", "d", 0, 0.5)
        db.save()
        db.put("k", "d", 1, 0.25)

        def boom(src, dst):
            raise OSError("killed mid-rename")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            db.save()
        monkeypatch.undo()
        # Old state intact, no temp litter.
        back = MeasurementDB(path)
        assert back.get("k", "d", 0) == 0.5
        assert not back.has("k", "d", 1)
        assert list(tmp_path.iterdir()) == [path]

    def test_put_coerces_to_float(self):
        import numpy as np

        db = MeasurementDB()
        db.put("k", "d", 0, np.float64(0.125))
        db.put("k", "d", 1, np.float32(2.0))
        assert type(db.get("k", "d", 0)) is float
        assert type(db.get("k", "d", 1)) is float

    def test_bulk_put_get_has(self):
        db = MeasurementDB()
        db.put_many("k", "d", {0: 1.0, 1: None, 2: 3.0})
        assert db.has("k", "d", 1) and not db.has("k", "d", 5)
        got = db.get_many("k", "d", [0, 1, 5])
        assert got == {0: 1.0, 1: None}  # 5 is unknown, hence absent
        assert sorted(db.known_indices("k", "d")) == [0, 1, 2]

    def test_merge_from_combines_shards(self):
        a, b = MeasurementDB(), MeasurementDB()
        a.put_many("k", "d1", {0: 1.0})
        b.put_many("k", "d1", {1: 2.0})
        b.put_many("k", "d2", {0: None})
        added = a.merge_from(b)
        assert added == 2
        assert a.get("k", "d1", 1) == 2.0
        assert a.has("k", "d2", 0)
        assert len(a) == 3
