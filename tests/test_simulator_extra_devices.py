"""Tests for the novel-architecture device model (Xeon Phi, §8)."""

import numpy as np
import pytest

from repro.kernels import ConvolutionKernel
from repro.simulator import INTEL_I7_3770, NVIDIA_K40, validate
from repro.simulator.executor import simulate_kernel_time
from repro.simulator.extra_devices import XEON_PHI_5110P


class TestXeonPhiModel:
    def test_identity(self):
        assert XEON_PHI_5110P.is_cpu  # CPU-style OpenCL runtime
        assert XEON_PHI_5110P.image_is_emulated
        assert XEON_PHI_5110P.local_is_emulated
        assert XEON_PHI_5110P.compute_units > 100  # many-core

    def test_not_in_main_catalog(self):
        """The paper's testbed stays canonical; the Phi is an extension."""
        from repro.simulator.devices import DEVICES, get_device

        assert all(d is not XEON_PHI_5110P for d in DEVICES.values())
        with pytest.raises(KeyError):
            get_device("phi")

    def test_jitter_between_cpu_and_gpus(self):
        assert (
            INTEL_I7_3770.jitter_sigma
            < XEON_PHI_5110P.jitter_sigma
            < NVIDIA_K40.jitter_sigma
        )

    def test_runs_the_benchmarks(self):
        spec = ConvolutionKernel()
        rng = np.random.default_rng(0)
        valid = 0
        for i in spec.space.sample_indices(200, rng):
            cfg = spec.space[int(i)]
            p = spec.workload(cfg, XEON_PHI_5110P)
            if validate(p, XEON_PHI_5110P):
                t = simulate_kernel_time(
                    p, XEON_PHI_5110P, jitter_key=("convolution", cfg.as_tuple())
                )
                assert 0 < t < 100.0
                valid += 1
        assert valid > 50

    def test_prefers_different_configs_than_the_host_cpu(self):
        """GPU-scale parallelism shifts the optimum: on a sample, the Phi's
        best and the i7's best should disagree."""
        from repro.experiments.oracle import TrueTimeOracle

        spec = ConvolutionKernel()
        rng = np.random.default_rng(3)
        idx = spec.space.sample_indices(3000, rng)
        phi = TrueTimeOracle(spec, XEON_PHI_5110P)
        i7 = TrueTimeOracle(spec, INTEL_I7_3770)
        phi_best, _ = phi.best_among(idx)
        i7_best, _ = i7.best_among(idx)
        assert phi_best != i7_best
