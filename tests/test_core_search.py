"""Tests for the search baselines."""

import numpy as np
import pytest

from repro.core.measure import Measurer
from repro.core.results import MeasurementDB
from repro.core.search import coordinate_descent, exhaustive_search, random_search
from repro.kernels.convolution import ConvolutionKernel, ConvolutionProblem
from repro.runtime import Context
from repro.simulator import NVIDIA_K40


@pytest.fixture(scope="module")
def measurer():
    # Paper-sized timing model; search over a subset keeps tests quick.
    return Measurer(Context(NVIDIA_K40, seed=4), ConvolutionKernel())


class TestExhaustive:
    def test_subset_measured_completely(self, measurer):
        subset = list(range(0, 4000, 40))
        ms = exhaustive_search(measurer, indices=subset)
        assert ms.n_valid + ms.n_invalid == len(subset)

    def test_records_into_db(self, measurer, tmp_path):
        db = MeasurementDB(tmp_path / "db.json")
        subset = list(range(100))
        ms = exhaustive_search(measurer, db=db, indices=subset)
        assert len(db) == 100
        # DB agrees with the returned set on validity.
        for i in ms.invalid_indices:
            assert db.get("convolution", "Nvidia K40", int(i)) is None
        db.save()
        reload = MeasurementDB(tmp_path / "db.json")
        assert len(reload) == 100


class TestRandomSearch:
    def test_budget_respected(self, measurer):
        ms = random_search(measurer, 200, np.random.default_rng(0))
        assert ms.n_valid + ms.n_invalid == 200

    def test_bad_budget(self, measurer):
        with pytest.raises(ValueError):
            random_search(measurer, 0, np.random.default_rng(0))

    def test_budget_capped_at_space(self):
        small = ConvolutionKernel(ConvolutionProblem(64, 64, 5))
        m = Measurer(Context(NVIDIA_K40, seed=1), small)
        ms = random_search(m, 10**9, np.random.default_rng(0))
        assert ms.n_valid + ms.n_invalid == small.space.size


class TestExhaustiveCheckpointAccounting:
    """Regression: when the final chunk landed exactly on a checkpoint
    boundary, the sweep saved the DB twice and counted both saves."""

    def _run(self, tmp_path, n, chunk_size, checkpoint_every, monkeypatch):
        from repro.obs import Tracer

        spec = ConvolutionKernel()
        db = MeasurementDB(tmp_path / "db.json")
        saves = []
        real_save = db.save
        monkeypatch.setattr(
            db, "save", lambda: (saves.append(1), real_save())[1]
        )
        records = []
        tracer = Tracer(sink=records.append)
        m = Measurer(Context(NVIDIA_K40, seed=6, tracer=tracer), spec)
        exhaustive_search(
            m,
            db=db,
            indices=list(range(n)),
            chunk_size=chunk_size,
            checkpoint_every=checkpoint_every,
        )
        tracer.close()
        counted = sum(
            r["values"].get("search.checkpoints", 0)
            for r in records
            if r.get("type") == "counters"
        )
        return len(saves), counted

    def test_boundary_final_chunk_saves_once(self, tmp_path, monkeypatch):
        # 4 chunks of 64, checkpoint every 2 -> chunk 4 checkpoints; the
        # post-loop save must be skipped.
        saves, counted = self._run(tmp_path, 256, 64, 2, monkeypatch)
        assert saves == 2
        assert counted == 2

    def test_off_boundary_final_chunk_gets_trailing_save(
        self, tmp_path, monkeypatch
    ):
        # 5 chunks of 64, checkpoint every 2 -> checkpoints after chunks
        # 2 and 4, plus the trailing save of chunk 5.
        saves, counted = self._run(tmp_path, 320, 64, 2, monkeypatch)
        assert saves == 3
        assert counted == 3


class TestCoordinateDescent:
    def test_reaches_single_axis_local_optimum(self, measurer):
        rng = np.random.default_rng(7)
        idx, t, n_measured, n_probed = coordinate_descent(
            measurer, rng, max_sweeps=2
        )
        assert idx >= 0
        assert t > 0
        assert n_measured > 0
        assert n_probed > 0  # the free validity scan that picked the start
        # Verify local optimality along one axis: no single change of the
        # first parameter improves the *true* time by more than noise.
        space = measurer.spec.space
        digits = list(space.digits_of(idx))
        base = measurer.true_time(idx)
        p = space.parameters[0]
        for d in range(p.cardinality):
            trial = digits.copy()
            trial[0] = d
            other = measurer.true_time(space.index_of_digits(trial))
            if other is not None:
                assert other > base * 0.85

    def test_respects_given_start(self, measurer):
        rng = np.random.default_rng(8)
        # Find some valid start.
        start = None
        for i in range(1000):
            if measurer.is_valid(i):
                start = i
                break
        idx, t, _, _ = coordinate_descent(
            measurer, rng, max_sweeps=1, start_index=start
        )
        assert measurer.true_time(idx) <= measurer.true_time(start) * 1.05

    def test_invalid_given_start_returns_failure_not_crash(self, measurer):
        """Regression: an invalid caller-supplied start_index used to trip
        ``assert best_time is not None``; it must fail like the
        no-valid-start path, with the probe counted in the budget."""
        space = measurer.spec.space
        invalid = None
        for i in range(space.size):
            if not measurer.is_valid(i):
                invalid = i
                break
        assert invalid is not None
        idx, t, n_measured, n_probed = coordinate_descent(
            measurer, np.random.default_rng(0), max_sweeps=1, start_index=invalid
        )
        assert idx == -1
        assert t != t  # NaN
        assert n_measured == 1  # the probe of the bad start still counts
        assert n_probed == 0  # no free scan: the start was caller-supplied

    def test_probes_not_counted_and_sweeps_deduped(self):
        """The two accounting fixes: free ``is_valid`` probes of the start
        scan must not inflate ``n_measured``, and a sweep revisiting an
        already-measured tuple (the incumbent included) must be served
        from the run's memo instead of re-billing the ledger."""
        m = Measurer(Context(NVIDIA_K40, seed=11), ConvolutionKernel())
        idx, t, n_measured, n_probed = coordinate_descent(
            m, np.random.default_rng(11), max_sweeps=3
        )
        assert idx >= 0
        # Every reported measurement actually billed the ledger: nothing
        # was double-measured (cache hits re-bill, so they must be zero)
        # and the free probes are reported separately.
        assert m.stats.n_cache_hits == 0
        assert n_measured == m.stats.n_simulated
        assert n_probed > 0
        assert m.stats.n_requested == n_measured

    def test_interactions_trap_it_above_global_optimum(self, measurer):
        """The §5.1 claim: one-at-a-time search cannot find the best
        configuration because parameters interact."""
        from repro.experiments.oracle import TrueTimeOracle
        from repro.simulator import NVIDIA_K40 as DEV

        oracle = TrueTimeOracle(measurer.spec, DEV)
        _, opt = oracle.global_optimum()
        worst_gap = 0.0
        for seed in (0, 1, 2):
            idx, _, _, _ = coordinate_descent(
                measurer, np.random.default_rng(seed), max_sweeps=3
            )
            worst_gap = max(worst_gap, oracle.time_of(idx) / opt)
        assert worst_gap > 1.05


class TestExhaustiveResume:
    """A killed sweep picks up from its on-disk DB instead of re-measuring."""

    def test_interrupted_sweep_resumes_from_checkpoint(self, tmp_path):
        spec = ConvolutionKernel()
        path = tmp_path / "sweep.json"
        subset = list(range(0, 6000, 10))

        # First run: measure the first half, checkpointing every chunk,
        # then "die" (simply stop).
        db = MeasurementDB(path)
        m1 = Measurer(Context(NVIDIA_K40, seed=9), spec)
        first = exhaustive_search(
            m1, db=db, indices=subset[:300], chunk_size=64, checkpoint_every=1
        )
        assert path.exists()

        # Restart: fresh process state, same DB file, full index list.
        db2 = MeasurementDB(path)
        m2 = Measurer(Context(NVIDIA_K40, seed=9), spec)
        full = exhaustive_search(
            m2, db=db2, indices=subset, chunk_size=64, checkpoint_every=1
        )
        assert full.n_valid + full.n_invalid == len(subset)
        # Nothing from the first half was re-simulated ...
        assert m2.stats.n_db_hits == 300
        assert m2.stats.n_simulated == len(subset) - 300
        # ... and the first half's stored values are reproduced verbatim.
        resumed = {int(i): t for i, t in zip(full.indices, full.times_s)}
        for i, t in zip(first.indices, first.times_s):
            assert resumed[int(i)] == t
        assert len(db2) == len(subset)

    def test_completed_sweep_replays_for_free(self, tmp_path):
        spec = ConvolutionKernel()
        path = tmp_path / "sweep.json"
        subset = list(range(0, 2000, 10))
        db = MeasurementDB(path)
        m1 = Measurer(Context(NVIDIA_K40, seed=2), spec)
        before = exhaustive_search(m1, db=db, indices=subset)

        db2 = MeasurementDB(path)
        m2 = Measurer(Context(NVIDIA_K40, seed=2), spec)
        after = exhaustive_search(m2, db=db2, indices=subset)
        assert m2.stats.n_simulated == 0
        assert m2.context.ledger.total_s == 0.0
        assert np.array_equal(before.indices, after.indices)
        assert np.array_equal(before.times_s, after.times_s)
        assert np.array_equal(before.invalid_indices, after.invalid_indices)
