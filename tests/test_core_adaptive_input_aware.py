"""Tests for the §8 extensions: principled M and input-aware modelling."""

import numpy as np
import pytest

from repro.core.adaptive import choose_m, rank_of_true_best_samples
from repro.core.input_aware import InputAwareModel, problem_features
from repro.core.model import PerformanceModel
from repro.experiments.oracle import TrueTimeOracle
from repro.kernels.convolution import ConvolutionKernel, ConvolutionProblem
from repro.simulator import NVIDIA_K40


class TestRankSampling:
    def test_zero_uncertainty_rank_zero(self):
        mean = np.array([1.0, 2.0, 3.0])
        std = np.zeros(3)
        ranks = rank_of_true_best_samples(mean, std, np.random.default_rng(0), 50)
        assert np.all(ranks == 0)

    def test_high_uncertainty_spreads_ranks(self):
        mean = np.linspace(0.0, 0.1, 50)  # near-ties
        std = np.full(50, 1.0)
        ranks = rank_of_true_best_samples(mean, std, np.random.default_rng(0), 400)
        assert ranks.max() > 10

    def test_validation(self):
        with pytest.raises(ValueError):
            rank_of_true_best_samples(
                np.zeros(3), np.zeros(2), np.random.default_rng(0)
            )
        with pytest.raises(ValueError):
            rank_of_true_best_samples(
                np.zeros(3), np.full(3, -1.0), np.random.default_rng(0)
            )


class TestChooseM:
    @pytest.fixture(scope="class")
    def fitted(self):
        spec = ConvolutionKernel()
        oracle = TrueTimeOracle(spec, NVIDIA_K40)
        rng = np.random.default_rng(2)
        idx = spec.space.sample_indices(1200, rng)
        t = oracle.measure(idx, rng)
        ok = ~np.isnan(t)
        model = PerformanceModel(spec.space, seed=2).fit(idx[ok], t[ok])
        return spec, model

    def test_monotone_in_target_probability(self, fitted):
        spec, model = fitted
        pool = model.top_m(400)
        rng = np.random.default_rng(0)
        m50 = choose_m(model, pool, 0.5, rng=np.random.default_rng(0))
        m95 = choose_m(model, pool, 0.95, rng=np.random.default_rng(0))
        assert 1 <= m50 <= m95 <= 400

    def test_cap_respected(self, fitted):
        _, model = fitted
        pool = model.top_m(400)
        m = choose_m(model, pool, 0.99, rng=np.random.default_rng(0), m_cap=25)
        assert m <= 25

    def test_validation(self, fitted):
        _, model = fitted
        pool = model.top_m(10)
        with pytest.raises(ValueError):
            choose_m(model, pool, 1.5)
        with pytest.raises(ValueError):
            choose_m(model, np.array([], dtype=np.int64), 0.9)


class TestProblemFeatures:
    def test_log2_of_numeric_fields(self):
        f = problem_features(ConvolutionProblem(2048, 1024, 5))
        assert f.tolist() == [11.0, 10.0, pytest.approx(np.log2(5))]

    def test_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            problem_features({"width": 64})


class TestInputAwareModel:
    @pytest.fixture(scope="class")
    def trained(self):
        """Train across three image sizes; hold out a fourth."""
        model = InputAwareModel(ConvolutionKernel, seed=0)
        rng = np.random.default_rng(3)
        samples = []
        for edge in (512, 1024, 4096):
            problem = ConvolutionProblem(edge, edge, 5)
            spec = model.spec_for(problem)
            oracle = TrueTimeOracle(spec, NVIDIA_K40)
            idx = spec.space.sample_indices(500, rng)
            t = oracle.measure(idx, rng)
            ok = ~np.isnan(t)
            samples.extend(
                (problem, int(i), float(x)) for i, x in zip(idx[ok], t[ok])
            )
        model.fit(samples)
        return model

    def test_transfers_to_unseen_size(self, trained):
        """Held-out size 2048: predictions must rank configurations well."""
        problem = ConvolutionProblem(2048, 2048, 5)
        spec = trained.spec_for(problem)
        oracle = TrueTimeOracle(spec, NVIDIA_K40)
        rng = np.random.default_rng(9)
        idx = spec.space.sample_indices(400, rng)
        true = oracle.times_for(idx)
        ok = ~np.isnan(true)
        pred = trained.predict(problem, idx[ok])
        corr = np.corrcoef(np.log(pred), np.log(true[ok]))[0, 1]
        assert corr > 0.85

    def test_top_m_finds_good_configs_for_unseen_size(self, trained):
        problem = ConvolutionProblem(2048, 2048, 5)
        spec = trained.spec_for(problem)
        oracle = TrueTimeOracle(spec, NVIDIA_K40)
        top = trained.top_m(problem, 50)
        best_i, best_t = oracle.best_among(top)
        # Within 2.2x of the global optimum with zero measurements at this
        # size (stage two would close the rest).
        _, opt = oracle.global_optimum()
        assert best_t / opt < 2.2

    def test_validation(self):
        model = InputAwareModel(ConvolutionKernel, seed=0)
        with pytest.raises(RuntimeError):
            model.predict(ConvolutionProblem(64, 64, 5), [0])
        with pytest.raises(ValueError):
            model.fit([])
        p = ConvolutionProblem(64, 64, 5)
        with pytest.raises(ValueError):
            model.fit([(p, 0, -1.0)] * 20)
