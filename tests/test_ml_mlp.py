"""Tests for the MLP regressor, including a numeric gradient check."""

import numpy as np
import pytest

from repro.ml import MLPRegressor
from repro.ml.layers import Dense
from repro.ml.losses import MSELoss
from repro.ml.metrics import r2_score


class TestGradientCheck:
    def test_backprop_matches_numeric_gradient(self):
        """Central-difference check of every weight gradient."""
        rng = np.random.default_rng(0)
        X = rng.standard_normal((12, 4))
        y = rng.standard_normal((12, 1))
        layers = [Dense(4, 5, "sigmoid", rng), Dense(5, 1, "identity", rng)]
        loss = MSELoss()

        def forward():
            a = X
            for l in layers:
                a = l.forward(a, train=True)
            return a

        pred = forward()
        grad = loss.gradient(pred, y)
        for l in reversed(layers):
            grad = l.backward(grad)

        eps = 1e-6
        for l in layers:
            for p, g in zip(l.params, l.grads):
                flat_p = p.ravel()
                flat_g = g.ravel()
                for idx in range(0, flat_p.size, max(1, flat_p.size // 7)):
                    orig = flat_p[idx]
                    flat_p[idx] = orig + eps
                    hi = loss.value(forward(), y)
                    flat_p[idx] = orig - eps
                    lo = loss.value(forward(), y)
                    flat_p[idx] = orig
                    numeric = (hi - lo) / (2 * eps)
                    assert numeric == pytest.approx(flat_g[idx], rel=1e-4, abs=1e-8)


class TestFitPredict:
    def test_learns_linear_function(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, (300, 3))
        y = 2 * X[:, 0] - X[:, 1] + 0.5
        m = MLPRegressor(hidden=(10,), seed=0, epochs=1500).fit(X, y)
        assert r2_score(m.predict(X), y) > 0.99

    def test_learns_interaction(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(-1, 1, (600, 2))
        y = X[:, 0] * X[:, 1]
        m = MLPRegressor(seed=0, epochs=1500).fit(X, y)
        assert r2_score(m.predict(X), y) > 0.95

    def test_seed_reproducibility(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(-1, 1, (100, 3))
        y = X.sum(axis=1)
        a = MLPRegressor(seed=7, epochs=200).fit(X, y).predict(X)
        b = MLPRegressor(seed=7, epochs=200).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(-1, 1, (100, 3))
        y = X.sum(axis=1)
        a = MLPRegressor(seed=1, epochs=50).fit(X, y).predict(X)
        b = MLPRegressor(seed=2, epochs=50).fit(X, y).predict(X)
        assert not np.array_equal(a, b)

    def test_loss_curve_decreases(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(-1, 1, (200, 3))
        y = X[:, 0] ** 2
        m = MLPRegressor(seed=0, epochs=300).fit(X, y)
        assert m.loss_curve_[-1] < m.loss_curve_[0]

    def test_early_stopping_bounds_epochs(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(-1, 1, (50, 2))
        y = np.zeros(50)  # trivially learnable
        m = MLPRegressor(seed=0, epochs=5000, patience=20).fit(X, y)
        assert len(m.loss_curve_) < 5000


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            MLPRegressor().predict(np.zeros((1, 2)))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MLPRegressor().fit(np.zeros((5, 2)), np.zeros(4))

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            MLPRegressor().fit(np.zeros((1, 2)), np.zeros(1))

    def test_bad_hidden(self):
        with pytest.raises(ValueError):
            MLPRegressor(hidden=(0,))

    def test_bad_epochs(self):
        with pytest.raises(ValueError):
            MLPRegressor(epochs=0)


class TestIntrospection:
    def test_n_parameters(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, (30, 4))
        m = MLPRegressor(hidden=(30,), seed=0, epochs=5).fit(X, X[:, 0])
        # (4*30 + 30) + (30*1 + 1)
        assert m.n_parameters == 4 * 30 + 30 + 30 + 1

    def test_describe_mentions_topology(self):
        assert "30" in MLPRegressor(hidden=(30,)).describe()

    def test_paper_topology_is_default(self):
        m = MLPRegressor()
        assert m.hidden == (30,)
        assert m.activation == "sigmoid"


class TestLossChoice:
    def test_huber_loss_trains(self):
        rng = np.random.default_rng(6)
        X = rng.uniform(-1, 1, (200, 3))
        y = X[:, 0] + X[:, 1]
        m = MLPRegressor(loss="huber", seed=0, epochs=600).fit(X, y)
        assert r2_score(m.predict(X), y) > 0.95

    def test_huber_more_robust_to_outliers(self):
        rng = np.random.default_rng(7)
        X = rng.uniform(-1, 1, (400, 3))
        y = X[:, 0] + X[:, 1]
        y_out = y.copy()
        y_out[:10] += 30.0  # gross outliers
        clean_region = slice(10, None)
        mse_fit = MLPRegressor(loss="mse", seed=0, epochs=600).fit(X, y_out)
        hub_fit = MLPRegressor(loss="huber", seed=0, epochs=600).fit(X, y_out)
        from repro.ml.metrics import mean_squared_error
        e_mse = mean_squared_error(mse_fit.predict(X[clean_region]), y[clean_region])
        e_hub = mean_squared_error(hub_fit.predict(X[clean_region]), y[clean_region])
        assert e_hub < e_mse

    def test_unknown_loss_rejected(self):
        with pytest.raises(ValueError):
            MLPRegressor(loss="mae")
