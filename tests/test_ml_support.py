"""Tests for activations, losses, optimizers, scaling, metrics, bagging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.activations import ACTIVATIONS, Identity, ReLU, Sigmoid, Tanh, get_activation
from repro.ml.bagging import BaggedRegressor
from repro.ml.losses import HuberLoss, MSELoss
from repro.ml.metrics import (
    mean_absolute_error,
    mean_relative_error,
    mean_squared_error,
    r2_score,
)
from repro.ml.optimizers import SGD, Adam, RProp, make_optimizer
from repro.ml.scaling import StandardScaler


class TestActivations:
    @pytest.mark.parametrize("act", [Sigmoid, Tanh, ReLU, Identity])
    def test_derivative_matches_numeric(self, act):
        z = np.linspace(-3, 3, 41)
        z = z[np.abs(z) > 1e-3]  # avoid the ReLU kink
        eps = 1e-6
        numeric = (act.value(z + eps) - act.value(z - eps)) / (2 * eps)
        analytic = act.derivative(act.value(z))
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_sigmoid_extremes_stable(self):
        z = np.array([-1e6, -100.0, 0.0, 100.0, 1e6])
        v = Sigmoid.value(z)
        assert np.all(np.isfinite(v))
        assert v[0] == pytest.approx(0.0)
        assert v[-1] == pytest.approx(1.0)
        assert v[2] == pytest.approx(0.5)

    def test_registry_and_lookup(self):
        assert set(ACTIVATIONS) == {"sigmoid", "tanh", "relu", "identity"}
        assert get_activation("sigmoid") is Sigmoid
        assert get_activation(Tanh) is Tanh
        with pytest.raises(KeyError):
            get_activation("swish")


class TestLosses:
    def test_mse_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        pred = rng.standard_normal((7, 1))
        target = rng.standard_normal((7, 1))
        g = MSELoss.gradient(pred, target)
        eps = 1e-6
        for i in range(7):
            p = pred.copy()
            p[i] += eps
            hi = MSELoss.value(p, target)
            p[i] -= 2 * eps
            lo = MSELoss.value(p, target)
            assert g[i, 0] == pytest.approx((hi - lo) / (2 * eps), rel=1e-5)

    def test_huber_quadratic_then_linear(self):
        h = HuberLoss(delta=1.0)
        small = h.value(np.array([0.5]), np.array([0.0]))
        assert small == pytest.approx(0.125)
        big = h.value(np.array([10.0]), np.array([0.0]))
        assert big == pytest.approx(1.0 * (10 - 0.5))

    def test_huber_gradient_clipped(self):
        h = HuberLoss(delta=1.0)
        g = h.gradient(np.array([10.0, -10.0, 0.3]), np.zeros(3))
        np.testing.assert_allclose(g * 3, [1.0, -1.0, 0.3])

    def test_huber_bad_delta(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0)


class TestOptimizers:
    def _quadratic_descent(self, opt, steps=300):
        # minimize (x - 3)^2 elementwise
        x = np.array([0.0, 10.0])
        for _ in range(steps):
            g = 2 * (x - 3.0)
            opt.step([x], [g])
        return x

    @pytest.mark.parametrize(
        "opt",
        [SGD(lr=0.05), SGD(lr=0.02, momentum=0.9), Adam(lr=0.1), RProp()],
    )
    def test_minimizes_quadratic(self, opt):
        x = self._quadratic_descent(opt)
        np.testing.assert_allclose(x, 3.0, atol=0.05)

    def test_make_optimizer_variants(self):
        assert isinstance(make_optimizer("adam"), Adam)
        assert isinstance(make_optimizer(("sgd", {"lr": 0.1})), SGD)
        inst = Adam()
        assert make_optimizer(inst) is inst
        with pytest.raises(KeyError):
            make_optimizer("lbfgs")

    def test_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(lr=0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)
        with pytest.raises(ValueError):
            Adam(lr=-1)


class TestStandardScaler:
    def test_transform_standardizes(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5, 3, (500, 4))
        s = StandardScaler()
        Z = s.fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0, atol=1e-12)
        np.testing.assert_allclose(Z.std(axis=0), 1, atol=1e-12)

    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        s = StandardScaler().fit(X)
        np.testing.assert_allclose(s.inverse_transform(s.transform(X)), X)

    def test_constant_column_silenced(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z[:, 0], 0.0)
        assert np.all(np.isfinite(Z))

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((1, 2)))


class TestMetrics:
    def test_mean_relative_error_definition(self):
        assert mean_relative_error([1.1, 0.9], [1.0, 1.0]) == pytest.approx(0.1)

    def test_mre_requires_positive_actuals(self):
        with pytest.raises(ValueError):
            mean_relative_error([1.0], [0.0])

    def test_perfect_scores(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mean_squared_error(y, y) == 0
        assert mean_absolute_error(y, y) == 0
        assert r2_score(y, y) == 1.0

    def test_r2_of_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, 2.0)
        assert r2_score(pred, y) == pytest.approx(0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])

    @given(
        st.lists(st.floats(0.1, 100), min_size=1, max_size=30),
        st.floats(1.001, 2.0),
    )
    @settings(max_examples=50)
    def test_mre_scale_property(self, actual, factor):
        """Predicting actual*f gives MRE of exactly f-1."""
        actual = np.asarray(actual)
        assert mean_relative_error(actual * factor, actual) == pytest.approx(
            factor - 1, rel=1e-9
        )


class TestBagging:
    class _Mean:
        """Trivial member: predicts its training mean."""

        def fit(self, X, y):
            self.mean = y.mean()
            return self

        def predict(self, X):
            return np.full(len(X), self.mean)

    def test_k_members_trained_on_folds(self):
        X = np.arange(22.0)[:, None]
        y = np.arange(22.0)
        m = BaggedRegressor(self._Mean, k=11, seed=0).fit(X, y)
        assert len(m.members_) == 11
        # Each member misses one fold: means differ across members.
        means = {mm.mean for mm in m.members_}
        assert len(means) > 1

    def test_prediction_is_member_mean(self):
        X = np.arange(22.0)[:, None]
        y = np.arange(22.0)
        m = BaggedRegressor(self._Mean, k=11, seed=0).fit(X, y)
        expected = np.mean([mm.mean for mm in m.members_])
        np.testing.assert_allclose(m.predict(X[:3]), expected)

    def test_predict_std_nonnegative(self):
        X = np.arange(22.0)[:, None]
        m = BaggedRegressor(self._Mean, k=11, seed=0).fit(X, np.arange(22.0))
        assert np.all(m.predict_std(X[:3]) >= 0)

    def test_paper_default_k_is_11(self):
        assert BaggedRegressor(self._Mean).k == 11

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            BaggedRegressor(self._Mean, k=11).fit(np.zeros((5, 1)), np.zeros(5))

    def test_bad_k(self):
        with pytest.raises(ValueError):
            BaggedRegressor(self._Mean, k=1)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            BaggedRegressor(self._Mean).predict(np.zeros((1, 1)))
