"""Tests for the persistent oracle store: atomicity, validation, and the
oracle/provider integration (compute-once, recover-from-corruption)."""

import json
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.experiments.oracle import TrueTimeOracle
from repro.experiments.oracle_store import (
    OracleKey,
    OracleProvider,
    OracleStore,
    OracleStoreError,
    _atomic_write_bytes,
)
from repro.kernels.convolution import ConvolutionKernel
from repro.simulator import SIMULATOR_VERSION, NVIDIA_K40


def synthetic_key(space_size=1000):
    return OracleKey("convolution", "dev A", "problem(512)", space_size)


def _fake_compute_batch(self, indices):
    """Cheap deterministic stand-in for the simulator sweep."""
    return np.asarray(indices, dtype=np.float64) + 1.0


@pytest.fixture
def store(tmp_path):
    return OracleStore(tmp_path / "store")


class TestAtomicWrite:
    def test_failed_write_leaves_nothing(self, tmp_path):
        target = tmp_path / "out.bin"

        def boom(fh):
            fh.write(b"partial")
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError):
            _atomic_write_bytes(target, boom)
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_replace_is_complete(self, tmp_path):
        target = tmp_path / "out.bin"
        _atomic_write_bytes(target, lambda fh: fh.write(b"first"))
        _atomic_write_bytes(target, lambda fh: fh.write(b"second"))
        assert target.read_bytes() == b"second"
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]


class TestFullTables:
    def test_round_trip_is_mmap_and_bit_equal(self, store):
        key = synthetic_key()
        times = np.linspace(0.0, 1.0, key.space_size)
        times[7] = np.nan
        store.save_full(key, times)
        loaded = store.load_full(key)
        assert isinstance(loaded, np.memmap)
        assert not loaded.flags.writeable
        np.testing.assert_array_equal(np.asarray(loaded), times)
        assert store.stats["full_saved"] == 1
        assert store.stats["full_hit"] == 1

    def test_absent_is_a_counted_miss(self, store):
        assert store.load_full(synthetic_key()) is None
        assert store.stats["full_miss"] == 1
        # Opportunistic probes are free.
        assert store.load_full(synthetic_key(), count_miss=False) is None
        assert store.stats["full_miss"] == 1

    def test_truncated_archive_raises_naming_file(self, store):
        key = synthetic_key()
        store.save_full(key, np.zeros(key.space_size))
        path = store.full_path(key)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(OracleStoreError, match=str(path)):
            store.load_full(key)

    def test_unreadable_sidecar_raises_naming_file(self, store):
        key = synthetic_key()
        store.save_full(key, np.zeros(key.space_size))
        store.meta_path(key).write_text("{not json")
        with pytest.raises(OracleStoreError, match=str(store.meta_path(key))):
            store.load_full(key)

    def test_foreign_archive_raises_naming_file(self, store):
        key = synthetic_key()
        store.save_full(key, np.zeros(key.space_size))
        foreign = synthetic_key(space_size=2000)  # same slug, other identity
        with pytest.raises(OracleStoreError, match=str(store.full_path(key))):
            store.load_full(foreign)

    def test_wrong_shape_raises(self, store):
        key = synthetic_key()
        store.save_full(key, np.zeros(key.space_size))
        meta = json.loads(store.meta_path(key).read_text())
        np.save(store.full_path(key), np.zeros(key.space_size + 5))
        store.meta_path(key).write_text(json.dumps(meta))
        with pytest.raises(OracleStoreError, match="shape"):
            store.load_full(key)

    def test_stale_version_is_a_silent_miss(self, store):
        key = synthetic_key()
        store.save_full(key, np.zeros(key.space_size))
        meta = json.loads(store.meta_path(key).read_text())
        assert meta["simulator_version"] == SIMULATOR_VERSION
        meta["simulator_version"] = SIMULATOR_VERSION + 999
        store.meta_path(key).write_text(json.dumps(meta))
        assert store.load_full(key) is None
        assert store.stats["full_stale"] == 1
        # Recompute-and-save makes it loadable again.
        store.save_full(key, np.ones(key.space_size))
        assert float(store.load_full(key)[0]) == 1.0


class TestPartialTables:
    def test_round_trip(self, store):
        key = synthetic_key()
        idx = np.array([3, 7, 11], dtype=np.int64)
        store.save_partial(key, idx, idx * 2.0)
        got_idx, got_t = store.load_partial(key)
        np.testing.assert_array_equal(got_idx, idx)
        np.testing.assert_array_equal(got_t, idx * 2.0)

    def test_merge_new_entries_win(self, store):
        key = synthetic_key()
        store.save_partial(key, np.array([1, 2]), np.array([10.0, 20.0]))
        store.save_partial(key, np.array([2, 3]), np.array([99.0, 30.0]))
        idx, t = store.load_partial(key)
        assert idx.tolist() == [1, 2, 3]
        assert t.tolist() == [10.0, 99.0, 30.0]

    def test_corrupt_archive_raises_then_is_overwritten(self, store):
        key = synthetic_key()
        store.partial_path(key).parent.mkdir(parents=True, exist_ok=True)
        store.partial_path(key).write_bytes(b"not an npz archive")
        with pytest.raises(OracleStoreError, match=str(store.partial_path(key))):
            store.load_partial(key)
        store.save_partial(key, np.array([5]), np.array([50.0]))
        idx, t = store.load_partial(key)
        assert idx.tolist() == [5] and t.tolist() == [50.0]

    def test_out_of_range_indices_rejected(self, store):
        key = synthetic_key()
        meta_blob = json.dumps(key.meta())
        store.partial_path(key).parent.mkdir(parents=True, exist_ok=True)
        with open(store.partial_path(key), "wb") as fh:
            np.savez(
                fh,
                meta=meta_blob,
                indices=np.array([key.space_size], dtype=np.int64),
                times=np.array([1.0]),
            )
        with pytest.raises(OracleStoreError, match="outside"):
            store.load_partial(key)


def _partial_writer(args):
    """Worker for the concurrent-writer test (module-level: pools pickle it).

    Mirrors real oracle flushes: each save persists the writer's whole
    cumulative set, so whichever writer replaces last lands its full view.
    """
    root, start = args
    store = OracleStore(root)
    key = synthetic_key()
    for i in range(5):
        idx = np.arange(start, start + (i + 1) * 10, dtype=np.int64)
        store.save_partial(key, idx, idx.astype(np.float64))
    return start


class TestConcurrentWriters:
    def test_racing_writers_land_safely(self, store):
        starts = [0, 500]
        with ProcessPoolExecutor(max_workers=2) as pool:
            assert sorted(pool.map(_partial_writer, [(str(store.root), s) for s in starts])) == starts
        idx, times = store.load_partial(synthetic_key())
        got = set(idx.tolist())
        writer_sets = [set(range(s, s + 50)) for s in starts]
        # The final archive is one writer's merged view: always loadable,
        # a subset of the union, and a superset of at least one writer.
        assert got <= writer_sets[0] | writer_sets[1]
        assert any(w <= got for w in writer_sets)
        np.testing.assert_array_equal(times, idx.astype(np.float64))


class TestOracleIntegration:
    @pytest.fixture(autouse=True)
    def cheap_compute(self, monkeypatch):
        monkeypatch.setattr(TrueTimeOracle, "_compute_batch", _fake_compute_batch)

    def test_full_table_computed_once_per_store(self, store):
        spec, dev = ConvolutionKernel(), NVIDIA_K40
        first = TrueTimeOracle(spec, dev, store=store)
        t1 = first.full_table()
        assert store.stats["full_miss"] == 1 and store.stats["full_saved"] == 1
        second = TrueTimeOracle(spec, dev, store=store)
        t2 = second.full_table()
        assert store.stats["full_hit"] == 1 and store.stats["full_saved"] == 1
        np.testing.assert_array_equal(np.asarray(t1), np.asarray(t2))

    def test_oracle_recovers_from_truncated_archive(self, store, capsys):
        spec, dev = ConvolutionKernel(), NVIDIA_K40
        TrueTimeOracle(spec, dev, store=store).full_table()
        key = OracleKey.for_pair(spec, dev)
        path = store.full_path(key)
        path.write_bytes(path.read_bytes()[:40])
        fresh = TrueTimeOracle(spec, dev, store=store)
        table = fresh.full_table()  # warns, recomputes, re-saves
        assert table.shape == (spec.space.size,)
        assert str(path) in capsys.readouterr().err
        assert store.stats["full_saved"] == 2

    def test_partial_entries_persist_across_oracles(self, store):
        spec, dev = ConvolutionKernel(), NVIDIA_K40
        first = TrueTimeOracle(spec, dev, store=store)
        idx = np.array([10, 20, 30], dtype=np.int64)
        want = first.times_for(idx)
        assert first.save_partial() == 3

        calls = []

        def counting(self, indices):
            calls.append(np.asarray(indices))
            return _fake_compute_batch(self, indices)

        second = TrueTimeOracle(spec, dev, store=store)
        second._compute_batch = counting.__get__(second)
        np.testing.assert_array_equal(second.times_for(idx), want)
        assert calls == []  # served entirely from the persisted partial

    def test_times_for_adopts_persisted_full_table(self, store):
        spec, dev = ConvolutionKernel(), NVIDIA_K40
        TrueTimeOracle(spec, dev, store=store).full_table()
        fresh = TrueTimeOracle(spec, dev, store=store)
        times = fresh.times_for(np.array([0, 1, 2], dtype=np.int64))
        np.testing.assert_array_equal(times, [1.0, 2.0, 3.0])
        assert fresh._full is not None  # mmap adopted, no partial allocated
        assert fresh._times is None


class TestProvider:
    def test_caches_equivalent_specs(self):
        provider = OracleProvider()
        a = provider.oracle(ConvolutionKernel(), NVIDIA_K40)
        b = provider.oracle(ConvolutionKernel(), NVIDIA_K40)
        assert a is b

    def test_coerces_path_to_store(self, tmp_path):
        provider = OracleProvider(tmp_path / "store")
        assert isinstance(provider.store, OracleStore)

    def test_flush_persists_partials(self, store, monkeypatch):
        monkeypatch.setattr(TrueTimeOracle, "_compute_batch", _fake_compute_batch)
        provider = OracleProvider(store)
        oracle = provider.oracle(ConvolutionKernel(), NVIDIA_K40)
        oracle.times_for(np.array([1, 2], dtype=np.int64))
        provider.flush()
        assert store.stats["partial_entries_saved"] == 2
        assert provider.stats_snapshot()["partial_entries_saved"] == 2
