"""Tests for invalid-configuration rules."""

import pytest

from repro.simulator.devices import AMD_HD7970, INTEL_I7_3770, NVIDIA_K40
from repro.simulator.validity import (
    STAGE_BUILD,
    STAGE_LAUNCH,
    InvalidConfig,
    validate,
)
from repro.simulator.workload import WorkloadProfile


def profile(wg=(16, 16), local_bytes=0, regs=16):
    return WorkloadProfile(
        global_size=(1024, 1024),
        workgroup=wg,
        flops_per_thread=10.0,
        local_mem_per_wg_bytes=local_bytes,
        registers_per_thread=regs,
    )


class TestBuildStage:
    def test_workgroup_over_limit(self):
        res = validate(profile(wg=(32, 32)), AMD_HD7970)  # 1024 > 256
        assert not res.valid
        assert res.stage == STAGE_BUILD
        assert "work-group" in res.reason

    def test_same_workgroup_fine_on_k40(self):
        assert validate(profile(wg=(32, 32)), NVIDIA_K40).valid

    def test_local_memory_over_limit(self):
        res = validate(profile(local_bytes=64 * 1024), NVIDIA_K40)  # > 48 KB
        assert not res.valid
        assert res.stage == STAGE_BUILD
        assert "local memory" in res.reason

    def test_local_fits_on_amd(self):
        assert validate(profile(local_bytes=60 * 1024), AMD_HD7970).valid


class TestLaunchStage:
    def test_register_pressure_fails_at_launch(self):
        # 255 (clamped) * 1024 threads > 65536 registers.
        res = validate(profile(wg=(32, 32), regs=255), NVIDIA_K40)
        assert not res.valid
        assert res.stage == STAGE_LAUNCH
        assert "register" in res.reason

    def test_cpu_never_register_limited(self):
        assert validate(profile(wg=(64, 64), regs=255), INTEL_I7_3770).valid


class TestResultBehaviour:
    def test_bool_protocol(self):
        assert validate(profile(), NVIDIA_K40)
        assert not validate(profile(wg=(64, 64)), AMD_HD7970)

    def test_raise_if_invalid(self):
        ok = validate(profile(), NVIDIA_K40)
        ok.raise_if_invalid()  # no exception
        bad = validate(profile(wg=(64, 64)), AMD_HD7970)
        with pytest.raises(InvalidConfig) as exc:
            bad.raise_if_invalid()
        assert exc.value.stage == STAGE_BUILD

    def test_cpu_has_fewer_invalids_than_gpus(self):
        """Paper §7: 'there are fewer invalid configurations on the CPU'."""
        import numpy as np

        from repro.kernels import ConvolutionKernel

        spec = ConvolutionKernel()
        rng = np.random.default_rng(0)
        idx = spec.space.sample_indices(2000, rng)
        counts = {}
        for dev in (INTEL_I7_3770, NVIDIA_K40, AMD_HD7970):
            bad = 0
            for i in idx:
                p = spec.workload(spec.space[int(i)], dev)
                if not validate(p, dev):
                    bad += 1
            counts[dev.name] = bad
        assert counts["Intel i7 3770"] < counts["Nvidia K40"]
        assert counts["Intel i7 3770"] < counts["AMD HD 7970"]
