"""Tests for the performance model and the two-stage auto-tuner."""

import numpy as np
import pytest

from repro.core.measure import Measurer
from repro.core.model import PerformanceModel
from repro.core.tuner import MLAutoTuner, TunerSettings
from repro.kernels import ConvolutionKernel
from repro.ml import RidgeRegression
from repro.runtime import Context
from repro.simulator import INTEL_I7_3770, NVIDIA_K40


@pytest.fixture(scope="module")
def spec():
    return ConvolutionKernel()


@pytest.fixture(scope="module")
def training(spec):
    """A shared stage-one campaign on the K40."""
    ctx = Context(NVIDIA_K40, seed=3)
    m = Measurer(ctx, spec)
    ms = m.sample_and_measure(1400, np.random.default_rng(3))
    assert ms.n_valid >= 700  # ~44% of the K40 space is invalid
    return m, ms


class TestPerformanceModel:
    def test_fit_predict_positive_times(self, spec, training):
        _, ms = training
        model = PerformanceModel(spec.space, seed=0).fit_measurements(ms)
        pred = model.predict_indices(ms.indices[:50])
        assert np.all(pred > 0)

    def test_reasonable_holdout_error(self, spec, training):
        measurer, ms = training
        model = PerformanceModel(spec.space, seed=0).fit(
            ms.indices[:600], ms.times_s[:600]
        )
        err = model.relative_error(ms.indices[600:], ms.times_s[600:])
        assert err < 0.45  # loose sanity bound for 600 samples

    def test_log_transform_improves_relative_error(self, spec, training):
        measurer, ms = training
        kw = dict(seed=0)
        with_log = PerformanceModel(spec.space, log_transform=True, **kw).fit(
            ms.indices[:600], ms.times_s[:600]
        )
        without = PerformanceModel(spec.space, log_transform=False, **kw).fit(
            ms.indices[:600], ms.times_s[:600]
        )
        e1 = with_log.relative_error(ms.indices[600:], ms.times_s[600:])
        e2 = without.relative_error(ms.indices[600:], ms.times_s[600:])
        assert e1 < e2

    def test_top_m_sorted_by_prediction(self, spec, training):
        _, ms = training
        model = PerformanceModel(spec.space, seed=0).fit_measurements(ms)
        top = model.top_m(20)
        pred = model.predict_indices(top)
        assert np.all(np.diff(pred) >= -1e-12)
        assert len(top) == 20

    def test_top_m_restricted_to_pool(self, spec, training):
        _, ms = training
        model = PerformanceModel(spec.space, seed=0).fit_measurements(ms)
        pool = np.arange(1000, dtype=np.int64)
        top = model.top_m(10, candidate_indices=pool)
        assert np.all(top < 1000)

    def test_custom_factory_baseline(self, spec, training):
        _, ms = training
        model = PerformanceModel(
            spec.space, k=3, seed=0, base_factory=lambda: RidgeRegression()
        ).fit_measurements(ms)
        assert np.all(model.predict_indices(ms.indices[:10]) > 0)

    def test_k1_single_model(self, spec, training):
        _, ms = training
        model = PerformanceModel(spec.space, k=1, seed=0).fit_measurements(ms)
        assert model.predict_indices([0]).shape == (1,)

    def test_validation(self, spec):
        model = PerformanceModel(spec.space, seed=0)
        with pytest.raises(RuntimeError):
            model.predict_indices([0])
        with pytest.raises(ValueError):
            model.fit([1, 2], [1.0])  # misaligned
        with pytest.raises(ValueError):
            model.fit([1, 2, 3], [1.0, -1.0, 2.0])  # nonpositive time
        with pytest.raises(ValueError):
            model.fit([1], [1.0])  # too few
        with pytest.raises(ValueError):
            model.top_m(0)


class TestTunerSettings:
    def test_defaults_match_paper_headline(self):
        s = TunerSettings()
        assert s.n_train == 2000 and s.m_candidates == 200 and s.k_bag == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            TunerSettings(n_train=5, k_bag=11)
        with pytest.raises(ValueError):
            TunerSettings(m_candidates=0)


class TestMLAutoTuner:
    def test_full_pipeline_finds_good_config(self, spec):
        ctx = Context(INTEL_I7_3770, seed=11)
        settings = TunerSettings(n_train=400, m_candidates=40)
        tuner = MLAutoTuner(ctx, spec, settings)
        result = tuner.tune(np.random.default_rng(11))
        assert not result.failed
        # The tuned config must beat the median of its own training sample.
        assert result.best_time_s < np.median(tuner.training_set.times_s)
        assert result.n_trained > 300
        assert result.n_stage2 == 40
        assert 0 < result.evaluated_fraction < 0.005
        assert result.total_cost_s > 0

    def test_stage_order_enforced(self, spec):
        ctx = Context(NVIDIA_K40, seed=0)
        tuner = MLAutoTuner(ctx, spec, TunerSettings(n_train=100, m_candidates=10))
        with pytest.raises(RuntimeError):
            tuner.train_model()
        with pytest.raises(RuntimeError):
            tuner.propose_candidates()

    def test_candidate_pool_mode(self, spec):
        ctx = Context(NVIDIA_K40, seed=5)
        settings = TunerSettings(n_train=300, m_candidates=20, candidate_pool=5000)
        tuner = MLAutoTuner(ctx, spec, settings)
        rng = np.random.default_rng(5)
        tuner.collect_training_data(rng)
        tuner.train_model(0)
        cands = tuner.propose_candidates(rng)
        assert len(cands) == 20

    def test_filter_known_invalid_extension(self, spec):
        ctx = Context(NVIDIA_K40, seed=5)
        settings = TunerSettings(
            n_train=300, m_candidates=20, filter_known_invalid=True
        )
        tuner = MLAutoTuner(ctx, spec, settings)
        rng = np.random.default_rng(5)
        tuner.collect_training_data(rng)
        tuner.train_model(0)
        cands = tuner.propose_candidates(rng)
        stage2 = tuner.evaluate_candidates(cands)
        assert stage2.n_invalid == 0

    def test_filter_known_invalid_predicts_at_most_twice(self, spec):
        """Regression: each escalation round used to re-predict the whole
        space.  Now the sorted order is computed at most twice — an
        optimistic 4M prefix, then (only if needed) the full order — and
        rounds merely widen the validity window over it."""
        ctx = Context(NVIDIA_K40, seed=5)
        settings = TunerSettings(
            n_train=300, m_candidates=20, filter_known_invalid=True
        )
        tuner = MLAutoTuner(ctx, spec, settings)
        rng = np.random.default_rng(5)
        tuner.collect_training_data(rng)
        tuner.train_model(0)

        calls = []
        real_top_m = tuner.model.top_m

        def counting_top_m(m, pool=None):
            calls.append(m)
            return real_top_m(m, pool)

        tuner.model.top_m = counting_top_m
        cands = tuner.propose_candidates(rng)
        assert len(calls) <= 2
        assert len(cands) == 20
        assert all(tuner.measurer.is_valid(int(i)) for i in cands)
        # The kept candidates are exactly the M best-ranked valid ones.
        full = real_top_m(spec.space.size)
        want = [int(i) for i in full if tuner.measurer.is_valid(int(i))][:20]
        np.testing.assert_array_equal(cands, want)

    def test_slowdown_vs(self, spec):
        ctx = Context(INTEL_I7_3770, seed=11)
        tuner = MLAutoTuner(ctx, spec, TunerSettings(n_train=400, m_candidates=40))
        result = tuner.tune(np.random.default_rng(11))
        assert not result.failed
        assert result.slowdown_vs(result.best_time_s) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            result.slowdown_vs(0.0)

    def test_all_invalid_stage2_reports_failure(self, spec):
        """The paper's 'auto-tuner gives no prediction at all' mode (§7):
        with few samples the model can rank only-invalid regions first."""
        ctx = Context(INTEL_I7_3770, seed=11)
        tuner = MLAutoTuner(ctx, spec, TunerSettings(n_train=300, m_candidates=20))
        result = tuner.tune(np.random.default_rng(11))
        if result.failed:  # seed-dependent; both outcomes must be coherent
            assert np.isnan(result.best_time_s)
            assert result.stage2_invalid == result.n_stage2
            assert np.isnan(result.slowdown_vs(1.0))
        else:
            assert result.best_time_s > 0


class TestInvalidPenaltyPolicy:
    def test_penalized_model_ranks_invalids_last(self, spec):
        """With invalid_penalty, the model's top-M should contain far fewer
        invalid configurations than the ignore policy's."""
        from repro.core.measure import Measurer
        from repro.simulator import AMD_HD7970

        measurer = Measurer(Context(AMD_HD7970, seed=4), spec)
        ms = measurer.sample_and_measure(500, np.random.default_rng(4))

        ignore = PerformanceModel(spec.space, seed=4).fit_measurements(ms)
        penal = PerformanceModel(spec.space, seed=4).fit_measurements(
            ms, invalid_penalty=10.0
        )
        bad_ignore = sum(1 for i in ignore.top_m(40) if not measurer.is_valid(int(i)))
        bad_penal = sum(1 for i in penal.top_m(40) if not measurer.is_valid(int(i)))
        assert bad_penal <= bad_ignore

    def test_penalty_validation(self, spec, training):
        _, ms = training
        model = PerformanceModel(spec.space, seed=0)
        with pytest.raises(ValueError):
            model.fit_measurements(ms, invalid_penalty=0.5)

    def test_no_invalids_is_a_plain_fit(self, spec, training):
        _, ms = training
        import numpy as _np

        clean = type(ms)(
            indices=ms.indices, times_s=ms.times_s,
            invalid_indices=_np.array([], dtype=_np.int64),
        )
        a = PerformanceModel(spec.space, seed=0).fit_measurements(clean)
        b = PerformanceModel(spec.space, seed=0).fit_measurements(
            clean, invalid_penalty=10.0
        )
        _np.testing.assert_array_equal(
            a.predict_indices([1, 2, 3]), b.predict_indices([1, 2, 3])
        )
