"""Tests for the memory-hierarchy cost model."""

import pytest

from repro.simulator.devices import AMD_HD7970, INTEL_I7_3770, NVIDIA_K40
from repro.simulator.memory import (
    cache_hit_fraction,
    constant_memory_time,
    global_memory_time,
    image_memory_time,
    local_memory_time,
    memory_time,
    spill_memory_time,
)
from repro.simulator.workload import WorkloadProfile


def profile(**kw):
    base = dict(
        global_size=(1024, 1024),
        workgroup=(16, 16),
        flops_per_thread=10.0,
    )
    base.update(kw)
    return WorkloadProfile(**base)


class TestGlobalMemory:
    def test_zero_traffic_zero_time(self):
        assert global_memory_time(profile(), NVIDIA_K40) == 0.0

    def test_time_scales_with_traffic(self):
        t1 = global_memory_time(profile(global_reads=10), NVIDIA_K40)
        t2 = global_memory_time(profile(global_reads=20), NVIDIA_K40)
        assert t2 == pytest.approx(2 * t1)

    def test_coalescing_matters_more_on_gpu(self):
        good = profile(global_reads=10, coalesced_fraction=1.0)
        bad = profile(global_reads=10, coalesced_fraction=0.0)
        gpu_ratio = global_memory_time(bad, NVIDIA_K40) / global_memory_time(
            good, NVIDIA_K40
        )
        cpu_ratio = global_memory_time(bad, INTEL_I7_3770) / global_memory_time(
            good, INTEL_I7_3770
        )
        assert gpu_ratio > cpu_ratio > 1.0

    def test_cpu_l2_overflow_penalty(self):
        small = profile(global_reads=10, wg_footprint_bytes=64 * 1024)
        big = profile(global_reads=10, wg_footprint_bytes=1024 * 1024)
        assert global_memory_time(big, INTEL_I7_3770) > global_memory_time(
            small, INTEL_I7_3770
        )
        # GPUs do not use the work-group as a cache-blocking unit.
        assert global_memory_time(big, NVIDIA_K40) == pytest.approx(
            global_memory_time(small, NVIDIA_K40)
        )


class TestCacheModel:
    def test_fitting_footprint_hits_high(self):
        p = profile(global_reads=10, footprint_bytes=100 * 1024, spatial_locality=0.2)
        assert cache_hit_fraction(p, NVIDIA_K40) > 0.85

    def test_streaming_footprint_locality_driven(self):
        lo = profile(global_reads=10, footprint_bytes=1e9, spatial_locality=0.1)
        hi = profile(global_reads=10, footprint_bytes=1e9, spatial_locality=0.9)
        assert cache_hit_fraction(hi, NVIDIA_K40) > cache_hit_fraction(lo, NVIDIA_K40)

    def test_hit_fraction_bounded(self):
        for loc in (0.0, 0.5, 1.0):
            for fp in (0.0, 1e3, 1e9):
                p = profile(footprint_bytes=fp, spatial_locality=loc)
                assert 0.0 <= cache_hit_fraction(p, NVIDIA_K40) <= 0.97


class TestImageMemory:
    def test_emulated_path_much_slower(self):
        p = profile(image_reads=25)
        assert image_memory_time(p, INTEL_I7_3770) > 20 * image_memory_time(
            p, NVIDIA_K40
        )

    def test_texture_cache_rewards_locality(self):
        lo = profile(image_reads=25, spatial_locality=0.1)
        hi = profile(image_reads=25, spatial_locality=0.9)
        assert image_memory_time(hi, NVIDIA_K40) < image_memory_time(lo, NVIDIA_K40)

    def test_k40_texture_path_beats_amd(self):
        # Kepler's texture cache is the stencil winner; GCN is LDS-centric.
        p = profile(image_reads=25, spatial_locality=0.85)
        assert image_memory_time(p, NVIDIA_K40) < image_memory_time(p, AMD_HD7970)


class TestLocalAndConstant:
    def test_local_faster_than_global_on_gpu(self):
        p = profile(local_reads=25)
        q = profile(global_reads=25, footprint_bytes=1e9, spatial_locality=0.5)
        assert local_memory_time(p, NVIDIA_K40) < global_memory_time(q, NVIDIA_K40)

    def test_local_no_faster_than_cache_on_cpu(self):
        # Emulated local memory is just cached global memory.
        p = profile(local_reads=25)
        q = profile(global_reads=25, footprint_bytes=64 * 1024)
        assert local_memory_time(p, INTEL_I7_3770) >= 0.8 * global_memory_time(
            q, INTEL_I7_3770
        )

    def test_constant_broadcast_fast(self):
        p = profile(constant_reads=25)
        q = profile(global_reads=25, footprint_bytes=1e9, spatial_locality=0.3)
        assert constant_memory_time(p, NVIDIA_K40) < global_memory_time(q, NVIDIA_K40)


class TestSpill:
    def test_no_spill_below_ceiling(self):
        p = profile(registers_per_thread=100)
        assert spill_memory_time(p, NVIDIA_K40) == 0.0

    def test_spill_above_ceiling(self):
        p = profile(registers_per_thread=300, loop_iterations_per_thread=10)
        assert spill_memory_time(p, NVIDIA_K40) > 0.0

    def test_spill_grows_with_overflow(self):
        t1 = spill_memory_time(
            profile(registers_per_thread=260, loop_iterations_per_thread=10), NVIDIA_K40
        )
        t2 = spill_memory_time(
            profile(registers_per_thread=300, loop_iterations_per_thread=10), NVIDIA_K40
        )
        assert t2 > t1


class TestBreakdown:
    def test_total_is_sum_of_parts(self):
        p = profile(
            global_reads=5,
            global_writes=1,
            image_reads=3,
            local_reads=10,
            local_writes=2,
            constant_reads=4,
        )
        cost = memory_time(p, NVIDIA_K40)
        assert cost.total == pytest.approx(
            cost.global_time
            + cost.image_time
            + cost.local_time
            + cost.constant_time
            + cost.spill_time
        )
        assert cost.total > 0
