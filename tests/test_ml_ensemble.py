"""Tests for the vectorized bagged-MLP ensemble."""

import numpy as np
import pytest

from repro.ml.bagging import BaggedRegressor
from repro.ml.ensemble import EnsembleMLPRegressor
from repro.ml.metrics import mean_squared_error, r2_score
from repro.ml.mlp import MLPRegressor


def make_problem(n=800, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 6))
    y = (
        np.sin(2 * X[:, 0])
        + X[:, 1] * X[:, 2]
        + 0.5 * np.abs(X[:, 3])
        + 0.05 * rng.standard_normal(n)
    )
    return X[: n // 2], y[: n // 2], X[n // 2 :], y[n // 2 :]


class TestAccuracy:
    def test_learns_nonlinear_surface(self):
        Xt, yt, Xv, yv = make_problem()
        m = EnsembleMLPRegressor(k=5, epochs=800, seed=0).fit(Xt, yt)
        assert r2_score(m.predict(Xv), yv) > 0.9

    def test_matches_scalar_bagging_quality(self):
        """The vectorized trainer must be statistically equivalent to the
        loop-of-MLPRegressor implementation it replaces."""
        Xt, yt, Xv, yv = make_problem()
        fast = EnsembleMLPRegressor(k=5, epochs=800, seed=0).fit(Xt, yt)
        c = [0]

        def factory():
            c[0] += 1
            return MLPRegressor(seed=c[0], epochs=800)

        slow = BaggedRegressor(factory, k=5, seed=0).fit(Xt, yt)
        mse_fast = mean_squared_error(fast.predict(Xv), yv)
        mse_slow = mean_squared_error(slow.predict(Xv), yv)
        assert mse_fast < 1.5 * mse_slow

    def test_k1_single_network(self):
        Xt, yt, Xv, yv = make_problem()
        m = EnsembleMLPRegressor(k=1, epochs=600, seed=0).fit(Xt, yt)
        assert r2_score(m.predict(Xv), yv) > 0.85


class TestEnsembleSemantics:
    def test_member_predictions_vary(self):
        Xt, yt, Xv, _ = make_problem()
        m = EnsembleMLPRegressor(k=7, epochs=300, seed=0).fit(Xt, yt)
        assert np.all(m.predict_std(Xv[:20]) >= 0)
        assert m.predict_std(Xv[:20]).max() > 0

    def test_mean_is_between_member_extremes(self):
        Xt, yt, Xv, _ = make_problem()
        m = EnsembleMLPRegressor(k=5, epochs=300, seed=0).fit(Xt, yt)
        members = m._member_predictions(Xv[:10])
        mean = m.predict(Xv[:10])
        assert np.all(mean <= members.max(axis=0) + 1e-9)
        assert np.all(mean >= members.min(axis=0) - 1e-9)

    def test_seed_reproducibility(self):
        Xt, yt, Xv, _ = make_problem()
        a = EnsembleMLPRegressor(k=3, epochs=100, seed=9).fit(Xt, yt).predict(Xv)
        b = EnsembleMLPRegressor(k=3, epochs=100, seed=9).fit(Xt, yt).predict(Xv)
        np.testing.assert_array_equal(a, b)


class TestValidation:
    def test_bad_k(self):
        with pytest.raises(ValueError):
            EnsembleMLPRegressor(k=0)

    def test_bad_hidden(self):
        with pytest.raises(ValueError):
            EnsembleMLPRegressor(hidden=0)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            EnsembleMLPRegressor(k=11).fit(np.zeros((5, 2)), np.zeros(5))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            EnsembleMLPRegressor().predict(np.zeros((1, 2)))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            EnsembleMLPRegressor().fit(np.zeros((20, 2)), np.zeros(19))


class TestEarlyStopping:
    def test_stops_on_plateau(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, (60, 2))
        y = np.zeros(60)
        m = EnsembleMLPRegressor(k=3, epochs=5000, patience=25, seed=0).fit(X, y)
        assert len(m.loss_curve_) < 5000

    def test_loss_decreases(self):
        Xt, yt, _, _ = make_problem()
        m = EnsembleMLPRegressor(k=3, epochs=300, seed=0).fit(Xt, yt)
        assert m.loss_curve_[-1] < m.loss_curve_[0] / 5
