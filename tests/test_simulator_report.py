"""Tests for the launch-breakdown reporter."""

import pytest

from repro.kernels import ConvolutionKernel
from repro.simulator import NVIDIA_K40
from repro.simulator.report import describe_breakdown, explain
from repro.simulator.executor import execute


@pytest.fixture(scope="module")
def spec():
    return ConvolutionKernel()


def config(spec, **overrides):
    base = dict(
        wg_x=32, wg_y=4, ppt_x=2, ppt_y=2, use_image=0, use_local=0,
        pad=1, interleaved=1, unroll=0,
    )
    base.update(overrides)
    return spec.space.config(**base)


class TestExplain:
    def test_mentions_kernel_device_and_launch(self, spec):
        txt = explain(spec, config(spec), NVIDIA_K40)
        assert "convolution on Nvidia K40" in txt
        assert "work-groups of 32x4" in txt
        assert "total" in txt

    def test_boundedness_labelled(self, spec):
        txt = explain(spec, config(spec), NVIDIA_K40, with_jitter=False)
        assert "compute-bound" in txt or "memory-bound" in txt

    def test_memory_spaces_listed_when_used(self, spec):
        local = explain(spec, config(spec, use_local=1), NVIDIA_K40)
        assert "local" in local
        image = explain(spec, config(spec, use_image=1), NVIDIA_K40)
        assert "image" in image

    def test_jitter_line_controlled_by_flag(self, spec):
        with_j = explain(spec, config(spec), NVIDIA_K40, with_jitter=True)
        without = explain(spec, config(spec), NVIDIA_K40, with_jitter=False)
        assert "config quirk" in with_j
        assert "config quirk" not in without

    def test_invalid_config_raises(self, spec):
        from repro.simulator.validity import InvalidConfig

        bad = config(spec, wg_x=128, wg_y=128)
        with pytest.raises(InvalidConfig):
            explain(spec, bad, NVIDIA_K40)


class TestDescribeBreakdown:
    def test_percentages_well_formed(self, spec):
        profile = spec.workload(config(spec), NVIDIA_K40)
        b = execute(profile, NVIDIA_K40)
        txt = describe_breakdown(b)
        assert "overlap" in txt and "wave penalty" in txt
        assert "ms" in txt
