"""Unit tests for device specs and the catalog."""

import dataclasses

import pytest

from repro.simulator import DEVICES, get_device
from repro.simulator.device import CPU, GPU, DeviceSpec
from repro.simulator.devices import (
    AMD_HD7970,
    INTEL_I7_3770,
    MAIN_DEVICES,
    NVIDIA_C2070,
    NVIDIA_GTX980,
    NVIDIA_K40,
)


class TestCatalog:
    def test_contains_all_paper_devices(self):
        assert set(DEVICES) == {"intel", "nvidia", "amd", "c2070", "gtx980"}

    def test_main_devices_are_the_evaluation_trio(self):
        assert MAIN_DEVICES == ("intel", "nvidia", "amd")

    def test_lookup_by_key_and_name(self):
        assert get_device("nvidia") is NVIDIA_K40
        assert get_device("Nvidia K40") is NVIDIA_K40
        assert get_device("INTEL") is INTEL_I7_3770

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_device("radeon-9999")

    def test_device_types(self):
        assert INTEL_I7_3770.is_cpu and not INTEL_I7_3770.is_gpu
        for gpu in (NVIDIA_K40, AMD_HD7970, NVIDIA_C2070, NVIDIA_GTX980):
            assert gpu.is_gpu and not gpu.is_cpu


class TestArchitectureFacts:
    """Published architecture numbers the cost model relies on."""

    def test_workgroup_limits(self):
        assert AMD_HD7970.max_workgroup_size == 256
        assert NVIDIA_K40.max_workgroup_size == 1024
        assert INTEL_I7_3770.max_workgroup_size == 8192

    def test_simd_widths(self):
        assert NVIDIA_K40.simd_width == 32  # warp
        assert AMD_HD7970.simd_width == 64  # wavefront
        assert INTEL_I7_3770.simd_width == 8  # AVX float

    def test_local_memory_sizes(self):
        assert NVIDIA_K40.local_mem_per_cu_kb == 48.0
        assert AMD_HD7970.local_mem_per_cu_kb == 64.0
        assert NVIDIA_K40.local_mem_per_cu_bytes == 48 * 1024

    def test_cpu_emulates_image_and_local(self):
        assert INTEL_I7_3770.image_is_emulated
        assert INTEL_I7_3770.local_is_emulated
        for gpu in (NVIDIA_K40, AMD_HD7970):
            assert not gpu.image_is_emulated
            assert not gpu.local_is_emulated

    def test_amd_driver_unroll_least_reliable(self):
        # The paper's §7 explanation for the AMD accuracy gap.
        assert AMD_HD7970.driver_unroll_reliability < NVIDIA_K40.driver_unroll_reliability
        assert AMD_HD7970.driver_unroll_reliability < INTEL_I7_3770.driver_unroll_reliability

    def test_cpu_timing_noise_smallest(self):
        # §7: CPU kernels run longer, timing is more reliable.
        for gpu in (NVIDIA_K40, AMD_HD7970, NVIDIA_C2070, NVIDIA_GTX980):
            assert INTEL_I7_3770.timing_noise_sigma < gpu.timing_noise_sigma

    def test_gtx980_has_highest_structured_jitter_of_nvidia_gpus(self):
        # Fig. 7: slightly worse model accuracy on Maxwell.
        assert NVIDIA_GTX980.jitter_sigma > NVIDIA_K40.jitter_sigma
        assert NVIDIA_GTX980.jitter_sigma > NVIDIA_C2070.jitter_sigma

    def test_peak_gflops_plausible(self):
        # K40 model throughput should land in the single-precision TFLOP/s
        # range; the CPU tens of GFLOP/s.
        assert 0.5e3 < NVIDIA_K40.peak_gflops < 6e3
        assert 20 < INTEL_I7_3770.peak_gflops < 300


class TestValidation:
    def _clone(self, dev, **changes):
        return dataclasses.replace(dev, **changes)

    def test_bad_device_type(self):
        with pytest.raises(ValueError):
            self._clone(NVIDIA_K40, device_type="tpu")

    def test_bad_reliability(self):
        with pytest.raises(ValueError):
            self._clone(NVIDIA_K40, driver_unroll_reliability=1.5)

    def test_nonpositive_clock(self):
        with pytest.raises(ValueError):
            self._clone(NVIDIA_K40, clock_ghz=0.0)

    def test_zero_compute_units(self):
        with pytest.raises(ValueError):
            self._clone(NVIDIA_K40, compute_units=0)

    def test_str_mentions_vendor(self):
        assert "Nvidia" in str(NVIDIA_K40)
