"""Directional timing facts the simulator must reproduce per benchmark.

These are the qualitative statements the paper's narrative rests on; each
test pins one of them so future calibration changes cannot silently break
the story.  All comparisons are on noise-free structural times (no jitter)
so the direction is about mechanisms, not luck.
"""

import numpy as np
import pytest

from repro.kernels import ConvolutionKernel, RaycastingKernel, StereoKernel
from repro.simulator import AMD_HD7970, INTEL_I7_3770, NVIDIA_K40
from repro.simulator.executor import simulate_kernel_time
from repro.simulator.validity import validate


def time_of(spec, device, **values):
    cfg = spec.space.config(**values)
    profile = spec.workload(cfg, device)
    assert validate(profile, device), f"config invalid on {device.name}: {values}"
    return simulate_kernel_time(profile, device)  # no jitter key


@pytest.fixture(scope="module")
def conv():
    return ConvolutionKernel()


@pytest.fixture(scope="module")
def ray():
    return RaycastingKernel()


def conv_base(**overrides):
    base = dict(
        wg_x=32, wg_y=4, ppt_x=2, ppt_y=2, use_image=0, use_local=0,
        pad=1, interleaved=1, unroll=0,
    )
    base.update(overrides)
    return base


class TestConvolutionDirections:
    def test_image_without_local_is_catastrophic_on_cpu(self, conv):
        """The Fig. 8 cluster: emulated textures, 25 fetches per pixel."""
        plain = time_of(conv, INTEL_I7_3770, **conv_base())
        image = time_of(conv, INTEL_I7_3770, **conv_base(use_image=1))
        rescued = time_of(conv, INTEL_I7_3770, **conv_base(use_image=1, use_local=1))
        assert image > 4 * plain
        assert rescued < image / 3

    def test_image_fine_on_k40(self, conv):
        plain = time_of(conv, NVIDIA_K40, **conv_base())
        image = time_of(conv, NVIDIA_K40, **conv_base(use_image=1))
        assert image < 2 * plain  # texture path is competitive, not a cliff

    def test_tiny_threads_hurt_cpu_more_than_gpu(self, conv):
        """Millions of one-pixel work-items drown in the CPU's work-item
        dispatch loop."""
        fine = conv_base(ppt_x=1, ppt_y=1)
        coarse = conv_base(ppt_x=8, ppt_y=8)
        cpu_ratio = time_of(conv, INTEL_I7_3770, **fine) / time_of(
            conv, INTEL_I7_3770, **coarse
        )
        gpu_ratio = time_of(conv, NVIDIA_K40, **fine) / time_of(
            conv, NVIDIA_K40, **coarse
        )
        assert cpu_ratio > gpu_ratio

    def test_interleaving_helps_gpu_hurts_cpu(self, conv):
        base = conv_base(ppt_x=8)
        gpu_inter = time_of(conv, NVIDIA_K40, **dict(base, interleaved=1))
        gpu_block = time_of(conv, NVIDIA_K40, **dict(base, interleaved=0))
        assert gpu_inter < gpu_block
        cpu_inter = time_of(conv, INTEL_I7_3770, **dict(base, interleaved=1))
        cpu_block = time_of(conv, INTEL_I7_3770, **dict(base, interleaved=0))
        assert cpu_block < cpu_inter

    def test_padding_always_helps_or_is_neutral(self, conv):
        for dev in (INTEL_I7_3770, NVIDIA_K40, AMD_HD7970):
            padded = time_of(conv, dev, **conv_base(pad=1))
            clamped = time_of(conv, dev, **conv_base(pad=0))
            assert padded <= clamped * 1.01

    def test_huge_wg_worse_than_moderate_on_k40(self, conv):
        moderate = time_of(conv, NVIDIA_K40, **conv_base(wg_x=32, wg_y=4))
        huge = time_of(conv, NVIDIA_K40, **conv_base(wg_x=32, wg_y=32))
        assert huge > moderate


class TestRaycastingDirections:
    def ray_base(self, **overrides):
        base = dict(
            wg_x=16, wg_y=8, ppt_x=1, ppt_y=1, img_data=0, img_tf=0,
            local_tf=0, const_tf=0, interleaved=1, unroll=4,
        )
        base.update(overrides)
        return base

    def test_volume_texture_wins_on_gpu_loses_on_cpu(self, ray):
        for dev, should_win in ((NVIDIA_K40, True), (INTEL_I7_3770, False)):
            glob = time_of(ray, dev, **self.ray_base(img_data=0))
            img = time_of(ray, dev, **self.ray_base(img_data=1))
            if should_win:
                assert img < glob
            else:
                assert img > glob

    def test_constant_tf_beats_plain_global_tf_on_gpu(self, ray):
        glob = time_of(ray, NVIDIA_K40, **self.ray_base(const_tf=0))
        const = time_of(ray, NVIDIA_K40, **self.ray_base(const_tf=1))
        assert const < glob

    def test_moderate_unrolling_never_hurts_and_helps_when_compute_bound(self, ray):
        for dev in (INTEL_I7_3770, NVIDIA_K40, AMD_HD7970):
            rolled = time_of(ray, dev, **self.ray_base(unroll=1))
            unrolled = time_of(ray, dev, **self.ray_base(unroll=4))
            assert unrolled <= rolled
        # The CPU run is compute-bound, so removing loop overhead shows up;
        # the GPU runs are memory-bound with full overlap, so it may not —
        # a classic reason one-size unroll advice fails across devices.
        assert time_of(ray, INTEL_I7_3770, **self.ray_base(unroll=4)) < time_of(
            ray, INTEL_I7_3770, **self.ray_base(unroll=1)
        )


class TestStereoDirections:
    def stereo_base(self, **overrides):
        base = dict(
            wg_x=16, wg_y=8, ppt_x=1, ppt_y=1, img_left=0, img_right=0,
            local_left=0, local_right=0, unroll_disp=1, unroll_diff_x=1,
            unroll_diff_y=1,
        )
        base.update(overrides)
        return base

    @pytest.fixture(scope="module")
    def stereo(self):
        return StereoKernel()

    def test_local_tiles_pay_off_on_gpus(self, stereo):
        for dev in (NVIDIA_K40, AMD_HD7970):
            direct = time_of(stereo, dev, **self.stereo_base())
            tiled = time_of(
                stereo, dev, **self.stereo_base(local_left=1, local_right=1)
            )
            assert tiled < direct

    def test_stereo_slowest_benchmark_everywhere(self, stereo, conv):
        """Table 1's workloads differ by orders of magnitude of work; the
        SAD search is the heavyweight."""
        for dev in (INTEL_I7_3770, NVIDIA_K40):
            s = time_of(stereo, dev, **self.stereo_base())
            c = time_of(conv, dev, **conv_base())
            assert s > c


class TestCrossDeviceMagnitudes:
    def test_gpus_much_faster_than_cpu_at_their_best(self, conv):
        cpu = time_of(conv, INTEL_I7_3770, **conv_base(ppt_x=8, ppt_y=8, interleaved=0))
        gpu = time_of(conv, NVIDIA_K40, **conv_base())
        assert gpu < cpu / 5

    def test_times_in_plausible_millisecond_range(self, conv):
        """Paper scatter plots span ~0.3-320 ms; sanity-bound ours."""
        t = time_of(conv, NVIDIA_K40, **conv_base())
        assert 1e-5 < t < 1.0
