"""End-to-end integration tests: the full pipeline across benchmarks and
devices, exactly as a user would run it."""

import numpy as np
import pytest

from repro import Context, MLAutoTuner, Measurer, TunerSettings
from repro.experiments.oracle import TrueTimeOracle
from repro.kernels import get_benchmark
from repro.simulator import AMD_HD7970, INTEL_I7_3770, NVIDIA_K40

DEVICES = {"intel": INTEL_I7_3770, "nvidia": NVIDIA_K40, "amd": AMD_HD7970}


class TestFullPipeline:
    @pytest.mark.parametrize("device_key", ["intel", "nvidia", "amd"])
    def test_convolution_tuning_beats_random_sampling(self, device_key):
        """The tuned configuration must beat the median random config by a
        large factor on every device."""
        device = DEVICES[device_key]
        spec = get_benchmark("convolution")
        ctx = Context(device, seed=31)
        tuner = MLAutoTuner(ctx, spec, TunerSettings(n_train=500, m_candidates=60))
        result = tuner.tune(np.random.default_rng(31), model_seed=31)
        if result.failed:
            pytest.skip("all-invalid stage two on this seed (paper's §7 mode)")
        median_random = float(np.median(tuner.training_set.times_s))
        assert result.best_time_s < median_random / 2

    @pytest.mark.parametrize("kernel", ["raycasting", "stereo"])
    def test_large_space_tuning_on_k40(self, kernel):
        spec = get_benchmark(kernel)
        ctx = Context(NVIDIA_K40, seed=13)
        tuner = MLAutoTuner(ctx, spec, TunerSettings(n_train=400, m_candidates=40))
        result = tuner.tune(np.random.default_rng(13), model_seed=13)
        if result.failed:
            pytest.skip("all-invalid stage two (paper's stereo-on-GPU mode)")
        assert result.best_time_s > 0
        assert result.evaluated_fraction < 0.001

    def test_same_seed_reproduces_exactly(self):
        spec = get_benchmark("convolution")

        def run():
            ctx = Context(NVIDIA_K40, seed=77)
            tuner = MLAutoTuner(
                ctx, spec, TunerSettings(n_train=400, m_candidates=40)
            )
            return tuner.tune(np.random.default_rng(77), model_seed=77)

        a, b = run(), run()
        assert a.best_index == b.best_index
        assert a.best_time_s == b.best_time_s or (
            np.isnan(a.best_time_s) and np.isnan(b.best_time_s)
        )
        assert a.total_cost_s == b.total_cost_s
        assert a.n_trained == b.n_trained

    def test_different_devices_prefer_different_configs(self):
        """Re-run the paper's premise end-to-end: per-device tuning lands
        on genuinely different configurations."""
        spec = get_benchmark("convolution")
        picks = {}
        for key, device in DEVICES.items():
            ctx = Context(device, seed=5)
            tuner = MLAutoTuner(
                ctx, spec, TunerSettings(n_train=600, m_candidates=60)
            )
            result = tuner.tune(np.random.default_rng(5), model_seed=5)
            if not result.failed:
                picks[key] = result.best_index
        assert len(picks) >= 2
        assert len(set(picks.values())) == len(picks)

    def test_tuned_config_is_functionally_correct(self):
        """The winning configuration must still compute the right answer —
        tie the tuning pipeline back to the functional implementations."""
        from repro.kernels.convolution import ConvolutionKernel, ConvolutionProblem

        spec = ConvolutionKernel()
        ctx = Context(NVIDIA_K40, seed=2)
        tuner = MLAutoTuner(ctx, spec, TunerSettings(n_train=300, m_candidates=30))
        result = tuner.tune(np.random.default_rng(2), model_seed=2)
        assert not result.failed
        best_values = dict(spec.space[result.best_index])

        small = ConvolutionKernel(ConvolutionProblem(64, 48, 5))
        cfg = small.space.config(**best_values)
        inputs = small.make_inputs(np.random.default_rng(0))
        np.testing.assert_array_equal(
            small.run(cfg, inputs), small.reference(inputs)
        )


class TestCostConsistency:
    def test_ledger_grows_monotonically_through_pipeline(self):
        spec = get_benchmark("convolution")
        ctx = Context(NVIDIA_K40, seed=9)
        tuner = MLAutoTuner(ctx, spec, TunerSettings(n_train=150, m_candidates=15))
        rng = np.random.default_rng(9)
        assert ctx.ledger.total_s == 0.0
        tuner.collect_training_data(rng)
        after_stage1 = ctx.ledger.total_s
        assert after_stage1 > 0
        tuner.train_model(9)
        assert ctx.ledger.total_s == after_stage1  # training is free on-device
        cands = tuner.propose_candidates(rng)
        tuner.evaluate_candidates(cands)
        assert ctx.ledger.total_s > after_stage1

    def test_measurer_shares_context_ledger(self):
        spec = get_benchmark("convolution")
        ctx = Context(NVIDIA_K40, seed=9)
        m = Measurer(ctx, spec)
        m.measure_batch(list(range(50)))
        assert ctx.ledger.total_s > 0


class TestOracleAgreesWithRuntime:
    def test_true_times_match(self):
        """The evaluation oracle and the runtime facade must agree on the
        noise-free time of every configuration."""
        spec = get_benchmark("convolution")
        oracle = TrueTimeOracle(spec, NVIDIA_K40)
        measurer = Measurer(Context(NVIDIA_K40, seed=0), spec)
        rng = np.random.default_rng(4)
        for i in spec.space.sample_indices(60, rng):
            i = int(i)
            runtime_t = measurer.true_time(i)
            oracle_t = oracle.time_of(i)
            if runtime_t is None:
                assert np.isnan(oracle_t)
            else:
                assert runtime_t == pytest.approx(oracle_t, rel=1e-12)
