"""Adaptive training engine: freeze-never bit-identity, warm starts,
the shared Adam stepper, and loss-curve trace downsampling.

The contract pinned here is the one ``benchmarks/test_perf_fit.py``
builds on: ``fit_mode="adaptive"`` with freezing disabled
(``freeze_patience=math.inf``) is *bit-identical* to the classic
global-stop loop — same weights, same loss curve, same RNG consumption —
so member-wise freezing is purely an opt-out approximation layered on a
semantics-preserving engine.
"""

import math

import numpy as np
import pytest

from repro.ml.bagging import BaggedRegressor
from repro.ml.ensemble import (
    LOSS_CURVE_TRACE_POINTS,
    EnsembleMLPRegressor,
    _curve_trace_indices,
)
from repro.ml.mlp import MLPRegressor
from repro.ml.optimizers import Adam, adam_step

pytestmark = pytest.mark.ml


def make_data(n=120, d=4, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, d))
    y = np.sin(2 * X[:, 0]) + X[:, 1] * X[:, -1] + 0.05 * rng.standard_normal(n)
    return X, y


def slow_data(n=300, d=6, seed=3):
    """Learnable but slow to converge: a cold fit runs to the epoch cap
    while a warm refit on the same data hits the global stop almost
    immediately — the regime where warm-restart ratios are meaningful."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, d))
    y = (
        np.sin(2 * X[:, 0])
        + X[:, 1] * X[:, 2]
        + 0.5 * np.abs(X[:, 3])
        + 0.02 * rng.standard_normal(n)
    )
    return X, y


class TestFreezeNeverBitIdentity:
    """20-seed property: the adaptive loop with freezing disabled is the
    classic loop, bit for bit."""

    @pytest.mark.parametrize("seed", range(20))
    def test_bit_identical_to_classic(self, seed):
        X, y = make_data(n=90, d=4, seed=seed)
        classic = EnsembleMLPRegressor(
            k=5, epochs=120, seed=seed, fit_mode="classic"
        ).fit(X, y)
        adaptive = EnsembleMLPRegressor(
            k=5,
            epochs=120,
            seed=seed,
            fit_mode="adaptive",
            freeze_patience=math.inf,
        ).fit(X, y)

        # Same weights (hence the same RNG stream was consumed in the
        # same order: fold permutation, W1 init, W2 init).
        for p_c, p_a in zip(classic._params, adaptive._params):
            np.testing.assert_array_equal(p_c, p_a)
        # Same loss trajectory and stop decision.
        np.testing.assert_array_equal(
            np.asarray(classic.loss_curve_), np.asarray(adaptive.loss_curve_)
        )
        assert adaptive.n_frozen_ == 0
        assert adaptive.stop_reason_ in ("early_stop", "max_epochs")
        # Same predictions, bit for bit.
        np.testing.assert_array_equal(adaptive.predict(X), classic.predict(X))

    def test_default_adaptive_freezes_and_saves_work(self):
        X, y = make_data(n=200, d=4, seed=1)
        m = EnsembleMLPRegressor(k=7, epochs=1500, seed=1).fit(X, y)
        epochs_run = len(m.loss_curve_)
        assert m.member_epochs_.shape == (7,)
        assert np.all(m.member_epochs_ >= 1)
        assert np.all(m.member_epochs_ <= epochs_run)
        if m.n_frozen_ > 0:
            # Frozen members stopped strictly before the run ended.
            assert int(m.member_epochs_.sum()) < 7 * epochs_run

    def test_all_frozen_stop_reason(self):
        # Aggressive thresholds: every member freezes almost at once.
        X, y = make_data(n=80, d=3, seed=2)
        m = EnsembleMLPRegressor(
            k=4, epochs=2000, seed=2, freeze_patience=1, freeze_tol=10.0
        ).fit(X, y)
        assert m.stop_reason_ == "all_frozen"
        assert m.n_frozen_ == 4
        assert len(m.loss_curve_) < 2000


class TestWarmStart:
    def test_warm_refit_identical_data_few_epochs(self):
        X, y = slow_data()
        m = EnsembleMLPRegressor(
            k=5, epochs=1500, patience=40, seed=3, freeze_patience=math.inf
        )
        m.fit(X, y)
        cold_epochs = len(m.loss_curve_)
        assert cold_epochs >= 500  # slow convergence: no early global stop
        m.fit(X, y, warm_start=True)
        assert m.warm_started_
        warm_epochs = len(m.loss_curve_)
        # Already converged: the refit only has to ride out the patience
        # window.
        assert warm_epochs < 0.10 * cold_epochs

    def test_feature_width_change_falls_back_cold(self):
        X4, y = make_data(n=90, d=4, seed=5)
        X6, _ = make_data(n=90, d=6, seed=5)
        m = EnsembleMLPRegressor(k=3, epochs=60, seed=5).fit(X4, y)
        with pytest.warns(RuntimeWarning, match="falling back to cold init"):
            m.fit(X6, y, warm_start=True)
        assert not m.warm_started_
        # The fallback is a cold fit: bit-identical to a fresh model.
        fresh = EnsembleMLPRegressor(k=3, epochs=60, seed=5).fit(X6, y)
        for p_m, p_f in zip(m._params, fresh._params):
            np.testing.assert_array_equal(p_m, p_f)

    def test_scaler_stats_refreshed_on_warm_refit(self):
        X, y = make_data(n=90, d=4, seed=6)
        m = EnsembleMLPRegressor(k=3, epochs=60, seed=6).fit(X, y)
        X2 = X * 3.0 + 5.0
        m.fit(X2, y, warm_start=True)
        assert m.warm_started_
        np.testing.assert_allclose(m._x_scaler.mean_, X2.mean(axis=0))
        np.testing.assert_allclose(
            m._x_scaler.scale_, np.maximum(X2.std(axis=0), 1e-12)
        )

    def test_warm_start_without_prior_fit_is_cold(self):
        X, y = make_data(n=60, d=3, seed=7)
        m = EnsembleMLPRegressor(k=3, epochs=50, seed=7)
        m.fit(X, y, warm_start=True)  # nothing to reuse; no warning
        assert not m.warm_started_

    def test_performance_model_reuses_ensemble_object(self):
        from repro.core.model import PerformanceModel
        from repro.kernels import ConvolutionKernel

        space = ConvolutionKernel().space
        rng = np.random.default_rng(0)
        idx = rng.integers(0, space.size, 60)
        times = np.exp(rng.standard_normal(60))
        pm = PerformanceModel(space, k=3, seed=0)
        pm.fit(idx, times)
        inner = pm._model
        pm.fit(idx, times, warm_start=True)
        assert pm._model is inner  # refit in place
        assert inner.warm_started_
        pm.fit(idx, times)  # cold: a fresh ensemble
        assert pm._model is not inner


class TestSharedAdamStepper:
    def test_adam_class_delegates_to_adam_step(self):
        rng = np.random.default_rng(0)
        params_a = [rng.standard_normal((3, 4)), rng.standard_normal(4)]
        params_b = [p.copy() for p in params_a]
        grads = [rng.standard_normal((3, 4)), rng.standard_normal(4)]

        opt = Adam(lr=0.05)
        ms = [np.zeros_like(p) for p in params_b]
        vs = [np.zeros_like(p) for p in params_b]
        for t in (1, 2, 3):
            opt.step(params_a, grads)
            adam_step(params_b, grads, ms, vs, t, 0.05)
        for a, b in zip(params_a, params_b):
            np.testing.assert_array_equal(a, b)

    def test_adam_step_matches_reference_formula(self):
        p = np.array([1.0, -2.0, 0.5])
        g = np.array([0.1, -0.3, 0.2])
        m = np.zeros(3)
        v = np.zeros(3)
        adam_step([p], [g], [m], [v], t=1, lr=0.01)
        m_ref = 0.1 * g
        v_ref = 0.001 * g * g
        p_ref = np.array([1.0, -2.0, 0.5]) - 0.01 * (m_ref / 0.1) / (
            np.sqrt(v_ref / 0.001) + 1e-8
        )
        np.testing.assert_allclose(p, p_ref, rtol=1e-12)


class TestCurveTraceDownsampling:
    def test_short_curve_untouched(self):
        idx = _curve_trace_indices([1.0, 0.5, 0.2])
        np.testing.assert_array_equal(idx, [0, 1, 2])

    def test_long_curve_capped_and_anchored(self):
        rng = np.random.default_rng(0)
        curve = list(rng.uniform(0.1, 1.0, 5000))
        best = 2718
        curve[best] = 0.01
        idx = _curve_trace_indices(curve)
        assert idx.size <= LOSS_CURVE_TRACE_POINTS
        assert idx[0] == 0
        assert idx[-1] == len(curve) - 1
        assert best in idx  # the best epoch always survives
        assert np.all(np.diff(idx) > 0)  # sorted, unique

    def test_exactly_cap_length(self):
        idx = _curve_trace_indices(list(range(LOSS_CURVE_TRACE_POINTS)))
        assert idx.size == LOSS_CURVE_TRACE_POINTS


class TestPredictMeanStd:
    def test_ensemble_single_pass_matches_two(self):
        X, y = make_data(n=100, d=4, seed=8)
        m = EnsembleMLPRegressor(k=5, epochs=150, seed=8).fit(X, y)
        mean, std = m.predict_mean_std(X[:30])
        np.testing.assert_array_equal(mean, m.predict(X[:30]))
        np.testing.assert_array_equal(std, m.predict_std(X[:30]))

    def test_bagged_single_pass_matches_two(self):
        X, y = make_data(n=100, d=4, seed=9)
        c = [0]

        def factory():
            c[0] += 1
            return MLPRegressor(seed=c[0], epochs=100)

        m = BaggedRegressor(factory, k=3, seed=9).fit(X, y)
        mean, std = m.predict_mean_std(X[:30])
        np.testing.assert_array_equal(mean, m.predict(X[:30]))
        np.testing.assert_array_equal(std, m.predict_std(X[:30]))


class TestOnlineChainQuality:
    """The online tuner pins its model chain to reference quality."""

    def test_default_online_chain_disables_freezing(self):
        from repro.core.online import OnlineTuner
        from repro.kernels import get_benchmark
        from repro.runtime import Context
        from repro.simulator import NVIDIA_K40

        online = OnlineTuner(Context(NVIDIA_K40, seed=0), get_benchmark("convolution"))
        assert online.tune_settings.fit_mode == "adaptive"
        assert online.tune_settings.freeze_patience == math.inf

    def test_explicit_freeze_thresholds_respected(self):
        from repro.core.online import OnlineTuner
        from repro.core.tuner import TunerSettings
        from repro.kernels import get_benchmark
        from repro.runtime import Context
        from repro.simulator import NVIDIA_K40

        online = OnlineTuner(
            Context(NVIDIA_K40, seed=0),
            get_benchmark("convolution"),
            tune_settings=TunerSettings(freeze_patience=15.0, freeze_tol=1e-3),
        )
        assert online.tune_settings.freeze_patience == 15.0
        assert online.tune_settings.freeze_tol == 1e-3


class TestValidation:
    def test_bad_fit_mode(self):
        with pytest.raises(ValueError, match="fit_mode"):
            EnsembleMLPRegressor(fit_mode="turbo")

    def test_bad_freeze_patience(self):
        with pytest.raises(ValueError, match="freeze_patience"):
            EnsembleMLPRegressor(freeze_patience=0)

    def test_bad_freeze_tol(self):
        with pytest.raises(ValueError, match="freeze_tol"):
            EnsembleMLPRegressor(freeze_tol=-1.0)

    def test_tuner_settings_fit_mode(self):
        from repro.core.tuner import TunerSettings

        with pytest.raises(ValueError, match="fit_mode"):
            TunerSettings(fit_mode="turbo")
