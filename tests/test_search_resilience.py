"""Fault/drift coverage for the search baselines.

Two halves:

* Seeded fault-injection runs of ``random_search`` / ``coordinate_descent``
  (and their strategy-zoo forms) under the ``flaky-gpu`` profile: the
  searches must degrade — quarantined configurations reported, results
  still produced — never crash, and stay bit-deterministic per seed.
* The zero-fault gate: with no profile attached (or the all-zeros
  ``"none"`` profile) the baselines must be **bit-identical** to
  ``tests/data/search_baseline_fixtures.json``, recorded at the commit
  that introduced the accounting fixes — resilience and the strategy
  refactor must cost nothing when nothing fails.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.measure import Measurer
from repro.core.search import coordinate_descent, random_search
from repro.core.strategies import BanditMetaTuner, SearchSettings
from repro.kernels import get_benchmark
from repro.runtime import Context
from repro.simulator import NVIDIA_K40

pytestmark = pytest.mark.search

FIXTURES = json.loads(
    (Path(__file__).parent / "data" / "search_baseline_fixtures.json")
    .read_text()
)


def _ledger_hex(ledger) -> dict:
    return {
        "compile_s": float.hex(ledger.compile_s),
        "run_s": float.hex(ledger.run_s),
        "failed_s": float.hex(ledger.failed_s),
        "total_s": float.hex(ledger.total_s),
    }


def _rng_word(ctx) -> str:
    return str(ctx.measurement.rng.bit_generator.state["state"]["state"])


def _ctx(seed, faults=None, drift=None):
    return Context(NVIDIA_K40, seed=seed, faults=faults, drift=drift)


@pytest.mark.fault
class TestFaultResilience:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_search_degrades_not_crashes(self, seed):
        m = Measurer(_ctx(seed, faults="flaky-gpu"), get_benchmark("convolution"))
        ms = random_search(m, 150, np.random.default_rng(seed))
        # Every slot is accounted for: valid + invalid + quarantined = 150.
        assert ms.n_valid + ms.n_invalid + ms.n_quarantined == 150
        assert ms.n_valid > 0
        # The run survived real faults (the profile guarantees some at
        # this volume) and the retry bucket caught their cost.
        assert m.stats.n_faults > 0
        assert m.context.ledger.retry_s > 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_search_deterministic_under_faults(self, seed):
        def once():
            m = Measurer(
                _ctx(seed, faults="flaky-gpu"), get_benchmark("convolution")
            )
            ms = random_search(m, 150, np.random.default_rng(seed))
            return (
                [int(i) for i in ms.indices],
                [float.hex(float(t)) for t in ms.times_s],
                sorted(m.quarantine),
                _ledger_hex(m.context.ledger),
            )

        assert once() == once()

    @pytest.mark.parametrize("seed", [3, 4])
    def test_coordinate_descent_survives_faults(self, seed):
        def once():
            m = Measurer(
                _ctx(seed, faults="flaky-gpu"), get_benchmark("convolution")
            )
            r = coordinate_descent(m, np.random.default_rng(seed), max_sweeps=2)
            return r, m

        r1, m1 = once()
        r2, m2 = once()
        # Degraded, not crashed: a pick (or an honest failure) either way,
        # with hang quarantines tracked instead of raising.
        assert r1.best_index == r2.best_index
        assert float.hex(r1.best_time_s) == float.hex(r2.best_time_s)
        assert r1.n_measured == r2.n_measured
        assert r1.n_probed == r2.n_probed
        assert sorted(m1.quarantine) == sorted(m2.quarantine)
        if r1.best_index >= 0:
            assert r1.best_time_s > 0

    def test_bandit_reports_quarantines_as_degraded(self):
        # p_hang=0.5 so some configurations hang through all retry
        # attempts and get quarantined (0.5^4 per attempt chain).
        m = Measurer(
            _ctx(1, faults="flaky-gpu:p_hang=0.5,hang_duration_s=2"),
            get_benchmark("convolution"),
        )
        settings = SearchSettings(budget=250, batch=40)
        out = BanditMetaTuner(m, settings).run(np.random.default_rng(1))
        assert out.best_index >= 0
        assert out.n_quarantined > 0
        assert m.stats.n_quarantined > 0

    def test_search_tuner_degrades_on_quarantine(self):
        from repro.core.strategies import SearchTuner

        ctx = _ctx(1, faults="flaky-gpu:p_hang=0.5,hang_duration_s=2")
        tuner = SearchTuner(
            ctx, get_benchmark("convolution"), "random",
            SearchSettings(budget=250, batch=50),
        )
        result = tuner.tune(np.random.default_rng(1))
        assert not result.failed
        assert result.degraded
        assert result.degraded_reason == "quarantined configurations"
        assert result.failure_breakdown.get("degraded", 0) >= 1


@pytest.mark.drift
class TestDriftResilience:
    def test_random_search_under_drift_is_deterministic(self):
        def once():
            m = Measurer(
                _ctx(2, drift="thermal-throttle:onset_s=10,ramp_s=30"),
                get_benchmark("convolution"),
            )
            ms = random_search(m, 150, np.random.default_rng(2))
            return (
                [int(i) for i in ms.indices],
                [float.hex(float(t)) for t in ms.times_s],
            )

        assert once() == once()

    def test_coordinate_descent_completes_under_drift(self):
        m = Measurer(
            _ctx(3, drift="thermal-throttle:onset_s=5,ramp_s=20"),
            get_benchmark("convolution"),
        )
        r = coordinate_descent(m, np.random.default_rng(3), max_sweeps=2)
        assert r.best_index >= 0
        assert np.isfinite(r.best_time_s)


class TestZeroFaultBitEquivalence:
    """The recorded-fixture gate (cf. tests/test_zero_fault_equivalence.py)."""

    @pytest.mark.parametrize("faults", [None, "none"])
    def test_random_search_matches_fixture(self, faults):
        want = FIXTURES["random_search"]
        ctx = _ctx(5, faults=faults)
        m = Measurer(ctx, get_benchmark("convolution"))
        ms = random_search(m, want["budget"], np.random.default_rng(5))
        assert [int(i) for i in ms.indices] == want["valid_indices"]
        assert [float.hex(float(t)) for t in ms.times_s] == want["times"]
        assert [int(i) for i in ms.invalid_indices] == want["invalid_indices"]
        assert ms.n_quarantined == 0
        assert _ledger_hex(ctx.ledger) == want["ledger"]
        assert ctx.ledger.retry_s == 0.0
        assert _rng_word(ctx) == want["rng_state"]

    @pytest.mark.parametrize("faults", [None, "none"])
    def test_coordinate_descent_matches_fixture(self, faults):
        want = FIXTURES["coordinate_descent"]
        ctx = _ctx(5, faults=faults)
        m = Measurer(ctx, get_benchmark("convolution"))
        r = coordinate_descent(
            m, np.random.default_rng(5), max_sweeps=want["max_sweeps"]
        )
        assert r.best_index == want["best_index"]
        assert float.hex(r.best_time_s) == want["best_time_s"]
        assert r.n_measured == want["n_measured"]
        assert r.n_probed == want["n_probed"]
        assert _ledger_hex(ctx.ledger) == want["ledger"]
        assert _rng_word(ctx) == want["rng_state"]
