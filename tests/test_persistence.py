"""Tests for model serialization (ensemble + performance model)."""

import numpy as np
import pytest

from repro.core.model import PerformanceModel
from repro.kernels import ConvolutionKernel, RaycastingKernel
from repro.ml import RidgeRegression
from repro.ml.ensemble import EnsembleMLPRegressor


@pytest.fixture(scope="module")
def fitted_ensemble():
    rng = np.random.default_rng(0)
    X = rng.uniform(-1, 1, (300, 5))
    y = X[:, 0] * X[:, 1] + np.sin(X[:, 2])
    return X, y, EnsembleMLPRegressor(k=5, epochs=300, seed=0).fit(X, y)


class TestEnsemblePersistence:
    def test_roundtrip_predictions_identical(self, fitted_ensemble, tmp_path):
        X, _, model = fitted_ensemble
        path = tmp_path / "model.npz"
        model.save(path)
        again = EnsembleMLPRegressor.load(path)
        np.testing.assert_array_equal(model.predict(X), again.predict(X))
        np.testing.assert_array_equal(model.predict_std(X), again.predict_std(X))

    def test_metadata_restored(self, fitted_ensemble, tmp_path):
        _, _, model = fitted_ensemble
        path = tmp_path / "model.npz"
        model.save(path)
        again = EnsembleMLPRegressor.load(path)
        assert again.k == 5
        assert again.hidden == 30
        assert again.activation.name == "sigmoid"

    def test_save_unfitted_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            EnsembleMLPRegressor().save(tmp_path / "x.npz")

    def test_save_appends_npz_like_savez(self, fitted_ensemble, tmp_path):
        _, _, model = fitted_ensemble
        model.save(tmp_path / "bare")
        assert (tmp_path / "bare.npz").exists()
        EnsembleMLPRegressor.load(tmp_path / "bare.npz")

    def test_save_is_atomic_and_leaves_no_temp_files(
        self, fitted_ensemble, tmp_path, monkeypatch
    ):
        """A kill mid-save must leave the previous on-disk model intact
        (same tempfile+fsync+os.replace recipe as MeasurementDB.save)."""
        X, _, model = fitted_ensemble
        path = tmp_path / "model.npz"
        model.save(path)
        good = path.read_bytes()

        import numpy as _np

        def boom(*args, **kwargs):
            raise KeyboardInterrupt("killed mid-save")

        monkeypatch.setattr(_np, "savez", boom)
        with pytest.raises(KeyboardInterrupt):
            model.save(path)
        monkeypatch.undo()

        assert path.read_bytes() == good  # previous state untouched
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]
        again = EnsembleMLPRegressor.load(path)
        np.testing.assert_array_equal(model.predict(X), again.predict(X))


class TestEnsembleLoadValidation:
    """Regression: load() used to trust the archive blindly — mismatched
    shapes surfaced later as cryptic broadcast errors in _forward."""

    def _resave(self, path, **overrides):
        data = dict(np.load(path, allow_pickle=False))
        data.update(overrides)
        np.savez(path, **data)

    def test_mismatched_w1_rejected(self, fitted_ensemble, tmp_path):
        _, _, model = fitted_ensemble
        path = tmp_path / "model.npz"
        model.save(path)
        self._resave(path, W1=np.zeros((2, 5, 30), dtype=np.float32))
        with pytest.raises(ValueError, match="W1.*meta"):
            EnsembleMLPRegressor.load(path)

    def test_mismatched_hidden_rejected(self, fitted_ensemble, tmp_path):
        _, _, model = fitted_ensemble
        path = tmp_path / "model.npz"
        model.save(path)
        self._resave(path, b1=np.zeros((5, 7), dtype=np.float32))
        with pytest.raises(ValueError, match=r"b1 shape"):
            EnsembleMLPRegressor.load(path)

    def test_error_names_the_file(self, fitted_ensemble, tmp_path):
        _, _, model = fitted_ensemble
        path = tmp_path / "model.npz"
        model.save(path)
        self._resave(path, W2=np.zeros((5, 99), dtype=np.float32))
        with pytest.raises(ValueError, match="model.npz"):
            EnsembleMLPRegressor.load(path)

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, unrelated=np.arange(3))
        with pytest.raises(ValueError, match="missing"):
            EnsembleMLPRegressor.load(path)

    def test_scaler_width_mismatch_rejected(self, fitted_ensemble, tmp_path):
        _, _, model = fitted_ensemble
        path = tmp_path / "model.npz"
        model.save(path)
        self._resave(path, x_mean=np.zeros(3))
        with pytest.raises(ValueError, match="x-scaler"):
            EnsembleMLPRegressor.load(path)

    def test_valid_archive_still_loads(self, fitted_ensemble, tmp_path):
        X, _, model = fitted_ensemble
        path = tmp_path / "model.npz"
        model.save(path)
        again = EnsembleMLPRegressor.load(path)
        np.testing.assert_array_equal(model.predict(X), again.predict(X))


class TestPerformanceModelPersistence:
    @pytest.fixture(scope="class")
    def fitted(self):
        from repro.experiments.oracle import TrueTimeOracle
        from repro.simulator import NVIDIA_K40

        spec = ConvolutionKernel()
        oracle = TrueTimeOracle(spec, NVIDIA_K40)
        rng = np.random.default_rng(1)
        idx = spec.space.sample_indices(600, rng)
        t = oracle.measure(idx, rng)
        ok = ~np.isnan(t)
        return spec, PerformanceModel(spec.space, seed=1).fit(idx[ok], t[ok])

    def test_roundtrip(self, fitted, tmp_path):
        spec, model = fitted
        path = tmp_path / "perf.npz"
        model.save(path)
        again = PerformanceModel.load(spec.space, path)
        idx = np.arange(500)
        np.testing.assert_array_equal(
            model.predict_indices(idx), again.predict_indices(idx)
        )
        # top_m agrees too.
        np.testing.assert_array_equal(model.top_m(20), again.top_m(20))

    def test_wrong_space_rejected(self, fitted, tmp_path):
        spec, model = fitted
        path = tmp_path / "perf.npz"
        model.save(path)
        other = RaycastingKernel().space  # 10 features, not 9
        with pytest.raises(ValueError, match="features"):
            PerformanceModel.load(other, path)

    def test_custom_factory_not_serializable(self, fitted, tmp_path):
        spec, _ = fitted
        m = PerformanceModel(
            spec.space, k=2, seed=0, base_factory=lambda: RidgeRegression()
        )
        rng = np.random.default_rng(0)
        from repro.experiments.oracle import TrueTimeOracle
        from repro.simulator import NVIDIA_K40

        oracle = TrueTimeOracle(spec, NVIDIA_K40)
        idx = spec.space.sample_indices(100, rng)
        t = oracle.measure(idx, rng)
        ok = ~np.isnan(t)
        m.fit(idx[ok], t[ok])
        with pytest.raises(TypeError):
            m.save(tmp_path / "x.npz")

    def test_save_unfitted_rejected(self, fitted, tmp_path):
        spec, _ = fitted
        with pytest.raises(RuntimeError):
            PerformanceModel(spec.space).save(tmp_path / "y.npz")


class TestLogTransformPersistence:
    """Regression: save() used to drop log_transform, so a model trained
    on raw seconds reloaded as log-space (or vice versa) silently returned
    garbage predictions."""

    def _fit(self, spec, log_transform):
        from repro.experiments.oracle import TrueTimeOracle
        from repro.simulator import NVIDIA_K40

        oracle = TrueTimeOracle(spec, NVIDIA_K40)
        rng = np.random.default_rng(2)
        idx = spec.space.sample_indices(300, rng)
        t = oracle.measure(idx, rng)
        ok = ~np.isnan(t)
        return PerformanceModel(
            spec.space, seed=2, log_transform=log_transform
        ).fit(idx[ok], t[ok])

    @pytest.mark.parametrize("flag", [True, False])
    def test_roundtrip_preserves_flag(self, tmp_path, flag):
        spec = ConvolutionKernel()
        model = self._fit(spec, flag)
        path = tmp_path / "m.npz"
        model.save(path)
        again = PerformanceModel.load(spec.space, path)
        assert again.log_transform is flag
        idx = np.arange(200)
        np.testing.assert_array_equal(
            model.predict_indices(idx), again.predict_indices(idx)
        )

    def test_contradicting_caller_rejected(self, tmp_path):
        spec = ConvolutionKernel()
        model = self._fit(spec, False)
        path = tmp_path / "m.npz"
        model.save(path)
        with pytest.raises(ValueError, match="log_transform"):
            PerformanceModel.load(spec.space, path, log_transform=True)

    def test_matching_caller_accepted(self, tmp_path):
        spec = ConvolutionKernel()
        model = self._fit(spec, False)
        path = tmp_path / "m.npz"
        model.save(path)
        again = PerformanceModel.load(spec.space, path, log_transform=False)
        assert again.log_transform is False

    def test_legacy_archive_warns_and_assumes_true(self, tmp_path):
        """Archives written before the flag existed carry a (2,) meta
        block; loading one without an explicit caller value must warn."""
        spec = ConvolutionKernel()
        model = self._fit(spec, True)
        path = tmp_path / "m.npz"
        model.save(path)
        data = dict(np.load(path, allow_pickle=False))
        data["meta"] = data["meta"][:2]  # strip the lt flag
        np.savez(path, **data)
        with pytest.warns(UserWarning, match="log_transform"):
            again = PerformanceModel.load(spec.space, path)
        assert again.log_transform is True
        # An explicit caller value silences the warning.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            again = PerformanceModel.load(spec.space, path, log_transform=False)
        assert again.log_transform is False

    def test_corrupt_flag_rejected(self, tmp_path):
        spec = ConvolutionKernel()
        model = self._fit(spec, True)
        path = tmp_path / "m.npz"
        model.save(path)
        data = dict(np.load(path, allow_pickle=False))
        meta = data["meta"].copy()
        meta[2] = 7
        data["meta"] = meta
        np.savez(path, **data)
        with pytest.raises(ValueError, match="log_transform"):
            PerformanceModel.load(spec.space, path)

    def test_bare_ensemble_save_defaults_to_unknown(self, fitted_ensemble, tmp_path):
        """EnsembleMLPRegressor.save without a flag records 'unknown',
        not a guessed value."""
        _, _, model = fitted_ensemble
        path = tmp_path / "e.npz"
        model.save(path)
        again = EnsembleMLPRegressor.load(path)
        assert again.saved_log_transform is None
