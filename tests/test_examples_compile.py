"""The examples must at least parse and import-check.

Running them end-to-end takes minutes each (they are demos, exercised
manually and in the docs); compilation plus an import-graph check catches
the common rot — renamed APIs, moved modules — cheaply on every test run.
"""

import ast
import importlib
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every `import repro...` / `from repro... import X` in an example
    must resolve against the installed package."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module} has no attribute {alias.name}"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    importlib.import_module(alias.name)


def test_expected_example_set():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "cross_device_portability.py",
        "custom_kernel.py",
        "compare_models.py",
        "input_aware_tuning.py",
        "novel_architecture.py",
        "portability_campaign.py",
    } <= names


def test_examples_have_docstrings_with_run_instructions():
    for path in EXAMPLES:
        tree = ast.parse(path.read_text())
        doc = ast.get_docstring(tree)
        assert doc, f"{path.name} lacks a module docstring"
        assert "Run:" in doc or "Run " in doc, f"{path.name}: no run instructions"
