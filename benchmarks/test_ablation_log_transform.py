"""Ablation: regressing log(time) vs raw time (§5.2).

The paper's argument: ANN training minimizes squared error, but with
kernel times spanning orders of magnitude the *relative* error is what
matters; taking the logarithm makes MSE-in-log equal relative-error-in-
time.  This bench quantifies the claim: the log-transformed model must
deliver clearly lower mean relative error than the raw-time model trained
on the same data.
"""

from conftest import emit

from repro.core.model import PerformanceModel


def fit_both(spec, idx, times, hold_idx, hold_times):
    out = {}
    for log_transform in (True, False):
        model = PerformanceModel(spec.space, seed=0, log_transform=log_transform)
        model.fit(idx, times)
        out[log_transform] = model.relative_error(hold_idx, hold_times)
    return out


def test_log_transform_reduces_relative_error(benchmark, conv_k40_pool):
    spec, _, idx, times, hold_idx, hold_times = conv_k40_pool
    errors = benchmark.pedantic(
        fit_both,
        args=(spec, idx, times, hold_idx, hold_times),
        rounds=1,
        iterations=1,
    )
    emit(
        "Ablation: log-transform (convolution @ K40, N=1600)\n"
        f"  with log(time):   {errors[True]:.1%} mean relative error\n"
        f"  raw time target:  {errors[False]:.1%} mean relative error"
    )
    assert errors[True] < errors[False]
    # The win should be substantial, not a rounding artifact.
    assert errors[False] / errors[True] > 1.3
