"""Microbenchmark of the vectorized batch measurement engine.

Pins the acceptance criterion of the batch engine: on a 10K-configuration
convolution sweep, ``Measurer.measure_batch`` must be at least 5x faster
than the scalar ``measure()`` loop *and* produce bit-identical results for
the same seed.  Also times the engine's throughput on its own for the
benchmark log, and the durable-cache replay path (everything served from
the MeasurementDB, no simulation at all).
"""

import time

import numpy as np
import pytest

from repro.core.measure import Measurer
from repro.core.results import MeasurementDB
from repro.core.search import exhaustive_search
from repro.kernels import ConvolutionKernel
from repro.runtime import Context
from repro.simulator import NVIDIA_K40

from conftest import emit

N_SWEEP = 10_000


@pytest.fixture(scope="module")
def conv():
    return ConvolutionKernel()


@pytest.fixture(scope="module")
def sweep_indices(conv):
    return conv.space.sample_indices(N_SWEEP, np.random.default_rng(42))


def test_batch_engine_speedup_and_bit_identity(conv, sweep_indices):
    """measure_batch >= 5x faster than the scalar loop, same results."""
    ctx_scalar = Context(NVIDIA_K40, seed=7)
    ctx_batch = Context(NVIDIA_K40, seed=7)
    m_scalar = Measurer(ctx_scalar, conv, repeats=3)
    m_batch = Measurer(ctx_batch, conv, repeats=3)

    t0 = time.perf_counter()
    scalar_values = [m_scalar.measure(int(i)) for i in sweep_indices]
    t_scalar = time.perf_counter() - t0

    t0 = time.perf_counter()
    ms = m_batch.measure_batch(sweep_indices)
    t_batch = time.perf_counter() - t0

    # Bit-identical outcomes first — speed without equivalence is worthless.
    ok = np.asarray([v is not None for v in scalar_values])
    assert np.array_equal(np.asarray(sweep_indices)[ok], ms.indices)
    assert np.array_equal(
        np.asarray([v for v in scalar_values if v is not None]), ms.times_s
    )
    assert ctx_scalar.ledger.total_s == ctx_batch.ledger.total_s

    speedup = t_scalar / t_batch
    emit(
        f"batch engine, {N_SWEEP} convolution configs on the K40:\n"
        f"  scalar loop : {t_scalar:8.3f} s "
        f"({N_SWEEP / t_scalar:10,.0f} configs/s)\n"
        f"  batch engine: {t_batch:8.3f} s "
        f"({N_SWEEP / t_batch:10,.0f} configs/s)\n"
        f"  speedup     : {speedup:8.1f}x"
    )
    assert speedup >= 5.0, f"batch engine only {speedup:.1f}x faster"


def test_perf_measure_batch_throughput(benchmark, conv, sweep_indices):
    def run():
        m = Measurer(Context(NVIDIA_K40, seed=7), conv, repeats=3)
        return m.measure_batch(sweep_indices)

    ms = benchmark(run)
    assert ms.n_valid + ms.n_invalid == N_SWEEP


def test_perf_db_replay_throughput(benchmark, conv, sweep_indices, tmp_path):
    """Replaying a persisted sweep touches no simulator code at all."""
    path = tmp_path / "sweep.json"
    db = MeasurementDB(path)
    m = Measurer(Context(NVIDIA_K40, seed=7), conv, repeats=3)
    exhaustive_search(m, db=db, indices=sweep_indices, chunk_size=4096)

    def replay():
        m2 = Measurer(
            Context(NVIDIA_K40, seed=7), conv, repeats=3, db=MeasurementDB(path)
        )
        return m2.measure_batch(sweep_indices)

    ms = benchmark(replay)
    assert ms.n_valid + ms.n_invalid == N_SWEEP
    emit(
        f"db replay of {N_SWEEP} configs: cache hit rate 100%, "
        f"file size {path.stat().st_size / 1024:.0f} KiB"
    )
