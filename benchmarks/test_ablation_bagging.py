"""Ablation: bagging (k = 11) vs a single network (§5.2).

"We found that this increased the accuracy of the predictions."  The
single network sees *more* data (no held-out fold) but the ensemble's
variance reduction should win on held-out error — averaged over several
seeds, since a single network's quality is luck-of-the-initialization.
"""

import numpy as np
from conftest import emit

from repro.core.model import PerformanceModel


def compare(spec, idx, times, hold_idx, hold_times, seeds=(0, 1, 2)):
    errs = {1: [], 11: []}
    for k in errs:
        for s in seeds:
            model = PerformanceModel(spec.space, k=k, seed=s)
            model.fit(idx, times)
            errs[k].append(model.relative_error(hold_idx, hold_times))
    return {k: float(np.mean(v)) for k, v in errs.items()}


def test_bagging_beats_single_network(benchmark, conv_k40_pool):
    spec, _, idx, times, hold_idx, hold_times = conv_k40_pool
    errors = benchmark.pedantic(
        compare, args=(spec, idx, times, hold_idx, hold_times), rounds=1, iterations=1
    )
    emit(
        "Ablation: bagging (convolution @ K40, N=1600, mean of 3 seeds)\n"
        f"  single network: {errors[1]:.1%}\n"
        f"  bagged k=11:    {errors[11]:.1%}"
    )
    assert errors[11] < errors[1]
