"""Figures 11-13: auto-tuner slowdown vs the global optimum (convolution).

Paper shape: slowdown shrinks as N (training samples) and M (stage-two
measurements) grow; at N=2000, M=200 the tuner lands within ~4-9% of the
exhaustive optimum after evaluating only 1.7% of the space; some cells are
missing because every stage-two candidate was invalid (§7), most often on
the AMD GPU at small N.
"""

import numpy as np
from conftest import emit

from repro.experiments import fig11_13_autotuner as fig


def test_fig11_13_tuner_grid(benchmark, bench_preset):
    results = benchmark.pedantic(
        fig.run, kwargs={"preset": bench_preset, "seed": 3}, rounds=1, iterations=1
    )
    emit(fig.format_text(results))

    for d in results["devices"]:
        g = results["grids"][d]
        n_hi = max(g["sizes"])
        m_hi = max(g["m_values"])
        best_cell = g["slowdown"][(n_hi, m_hi)]
        # The headline cell must exist and be close to the optimum.
        assert best_cell == best_cell, f"{d}: headline cell missing"
        assert 1.0 <= best_cell < 1.45, f"{d}: {best_cell}"

        # Larger M never hurts much at fixed N (same model, bigger prefix;
        # only measurement noise can invert it).
        for n in g["sizes"]:
            lo_m = g["slowdown"][(n, min(g["m_values"]))]
            hi_m = g["slowdown"][(n, m_hi)]
            if lo_m == lo_m and hi_m == hi_m:
                assert hi_m <= lo_m * 1.10

    # Every measured cell is a true slowdown (>= 1 up to timing noise).
    for d in results["devices"]:
        for v in results["grids"][d]["slowdown"].values():
            if v == v:
                assert v >= 0.999
