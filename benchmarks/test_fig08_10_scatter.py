"""Figures 8-10: predicted vs actual scatter (convolution, 100 points).

Paper shape: points hug the diagonal on log-log axes on all three devices;
on the Intel i7, image-memory-without-local-memory configurations form a
distinctly slower cluster (emulated texture fetches).
"""

import numpy as np
from conftest import emit

from repro.experiments import fig08_10_scatter as fig


def test_fig08_10_scatter(benchmark):
    results = benchmark.pedantic(
        fig.run, kwargs={"n_train": 1500}, rounds=1, iterations=1
    )
    emit(fig.format_text(results, max_rows=20))

    for d in results["devices"]:
        s = results["scatter"][d]
        assert len(s["actual_s"]) == 100
        # Tight diagonal on log axes.
        assert s["log_correlation"] > 0.9, d
        # Predictions within an order of magnitude everywhere.
        ratio = s["predicted_s"] / s["actual_s"]
        assert np.all(ratio > 0.1) and np.all(ratio < 10.0), d

    # The Intel clustering: image-without-local clearly slower than the rest.
    intel = results["scatter"]["intel"]
    assert intel["cluster_median_slowdown"] > 3.0
    # ... and specific to the CPU's emulated image path.
    for gpu in ("nvidia", "amd"):
        c = results["scatter"][gpu]["cluster_median_slowdown"]
        if c == c:  # may be NaN if the holdout drew no such configs
            assert c < 3.0
