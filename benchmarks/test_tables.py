"""Tables 1 & 2: benchmark inventory and parameter spaces."""

from conftest import emit

from repro.experiments import tables


def test_table1_table2_parameter_spaces(benchmark):
    results = benchmark.pedantic(tables.run, rounds=1, iterations=1)
    emit(tables.format_text(results))
    # The quoted space sizes (§5.1) must match exactly.
    for name, r in results.items():
        assert r["space_size"] == r["paper_size"], name
    # Work-group / pixels-per-thread axes are the paper's 1..128 range.
    conv = dict(results)["convolution"]
    by_name = {p[0]: p[2] for p in conv["parameters"]}
    assert by_name["wg_x"] == (1, 2, 4, 8, 16, 32, 64, 128)
    assert by_name["unroll"] == (0, 1)
