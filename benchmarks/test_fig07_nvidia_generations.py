"""Figure 7: convolution model accuracy across Nvidia generations.

Paper shape: K40 (Kepler) and C2070 (Fermi) similar; GTX980 (Maxwell)
slightly worse.
"""

from conftest import emit

from repro.experiments import fig07_nvidia_generations as fig


def test_fig07_generation_accuracy(benchmark, bench_preset):
    results = benchmark.pedantic(
        fig.run, kwargs={"preset": bench_preset}, rounds=1, iterations=1
    )
    emit(fig.format_text(results))

    top_n = max(results["sizes"])
    err = {d: results["curves"][d]["errors"][top_n] for d in fig.NVIDIA_GENERATIONS}
    # Maxwell the hardest to predict; Fermi/Kepler within a couple points.
    assert err["gtx980"] > err["nvidia"]
    assert err["gtx980"] > err["c2070"]
    assert abs(err["nvidia"] - err["c2070"]) < 0.06
    # Everyone's curve still decreases with data.
    for d in fig.NVIDIA_GENERATIONS:
        first = results["curves"][d]["errors"][min(results["sizes"])]
        assert err[d] < first
