"""Acceptance gate for the adaptive ensemble-training engine.

Three contracts, all against ``fit_mode="classic"`` (the original
global-stop loop, kept as the reference baseline):

* **campaign fit wall-time** — a training *trajectory* at the fig11
  paper-anchor set sizes (N=2000 and N=500 stage-one draws): one cold
  fit plus three drift-regime refits, the workload the online tuner and
  the serve daemon's watch campaigns actually run.  The adaptive engine
  (member freezing on the cold fit, warm starts on the refits) must be
  ``>= MIN_SPEEDUP`` faster in aggregate, with mean prediction
  divergence ``<= MAX_REL_DIVERGENCE`` on every fit.
* **tuner-pick parity** — with freezing disabled
  (``freeze_patience=inf``) the adaptive loop is bit-identical to
  classic, so the end-to-end tuner pick must not move: 20 seeded tunes
  per engine, 20/20 identical picks (the same acceptance pattern the
  fused sweep engine shipped under in
  ``test_perf_predict_sweep.py::test_tuner_pick_unchanged_by_engine``).
* **warm-restart convergence** — a warm refit must spend fewer epochs
  than the cold fits it replaces (deterministic, wall-noise-free).

Each run appends a trajectory point to ``benchmarks/BENCH_fit.json``
(rendered by ``repro bench-report``) so fit-speed regressions show up
as a series, not just a pass/fail bit.
"""

import json
import math
import subprocess
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.encoding import ConfigEncoder
from repro.core.measure import Measurer
from repro.core.tuner import MLAutoTuner, TunerSettings
from repro.kernels import get_benchmark
from repro.ml.ensemble import EnsembleMLPRegressor
from repro.runtime import Context
from repro.simulator import get_device

from conftest import emit

ARTIFACT = Path(__file__).parent / "BENCH_fit.json"

#: Acceptance gates (ISSUE: adaptive ensemble-training engine).
MIN_SPEEDUP = 2.5          # aggregate campaign wall, classic / adaptive
MAX_REL_DIVERGENCE = 0.10  # mean |pred_a - pred_c| / pred_c, per fit
PICK_SEEDS = 20            # seeded tunes in the parity stage

KERNEL = "convolution"
DEVICE = "gtx980"
ANCHORS = (2000, 500)      # fig11 stage-one sizes
REFITS = 3                 # drift regimes per anchor


def _append_trajectory(point: dict) -> None:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=Path(__file__).parent,
            timeout=10,
        ).stdout.strip() or "unknown"
    except Exception:
        rev = "unknown"
    point = {"git_rev": rev, **point}
    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(ARTIFACT.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(point)
    ARTIFACT.write_text(json.dumps(history, indent=2) + "\n")


def _campaign_targets(n_train: int):
    """Stage-one features plus one clean + ``REFITS`` drifted target sets.

    The drifted sets model what a re-tune refits on: the same
    configurations, re-measured under a contention regime (a global
    level plus per-configuration quirks that reorder the space).
    """
    spec = get_benchmark(KERNEL)
    ctx = Context(get_device(DEVICE), seed=0)
    ms = Measurer(ctx, spec).sample_and_measure(n_train, np.random.default_rng(0))
    X = ConfigEncoder(spec.space).encode_indices(ms.indices)
    rng = np.random.default_rng(42)
    targets = [np.log(ms.times_s)]
    for r in range(REFITS):
        factors = (1.1 + 0.1 * r) * rng.lognormal(0.0, 0.05, ms.times_s.shape)
        targets.append(np.log(ms.times_s * factors))
    return X, targets


def _run_campaign(X, targets, fit_mode):
    """Fit the clean set cold, then refit each drifted set.

    The classic engine has no warm path — every refit is a cold fit,
    which is exactly what pre-adaptive campaigns paid.
    """
    model = EnsembleMLPRegressor(seed=0, fit_mode=fit_mode)
    wall = 0.0
    epochs = 0
    work = 0
    preds = []
    for i, y in enumerate(targets):
        t0 = time.perf_counter()
        model.fit(X, y, warm_start=(fit_mode == "adaptive" and i > 0))
        wall += time.perf_counter() - t0
        epochs += len(model.loss_curve_)
        work += int(model.member_epochs_.sum())
        preds.append(model.predict(X))
    return model, wall, epochs, work, preds


def test_campaign_fit_speedup_and_quality():
    per_anchor = []
    wall_c = wall_a = 0.0
    for n in ANCHORS:
        X, targets = _campaign_targets(n)
        _, wc, ec, workc, pc = _run_campaign(X, targets, "classic")
        ma, wa, ea, worka, pa = _run_campaign(X, targets, "adaptive")
        rel = max(
            float(np.mean(np.abs(np.exp(a) - np.exp(c)) / np.exp(c)))
            for a, c in zip(pa, pc)
        )
        per_anchor.append({
            "n_train": n,
            "n_valid": int(X.shape[0]),
            "classic_wall_s": round(wc, 3),
            "adaptive_wall_s": round(wa, 3),
            "classic_epochs": ec,
            "adaptive_epochs": ea,
            "classic_member_epochs": workc,
            "adaptive_member_epochs": worka,
            "speedup": round(wc / wa, 2),
            "max_rel_divergence": round(rel, 4),
            "final_frozen": int(ma.n_frozen_),
            "final_stop": ma.stop_reason_,
        })
        wall_c += wc
        wall_a += wa
        assert rel <= MAX_REL_DIVERGENCE, (
            f"N={n}: adaptive predictions diverge {rel:.3f} from classic "
            f"(gate {MAX_REL_DIVERGENCE})"
        )

    speedup = wall_c / wall_a
    lines = [
        f"campaign fit trajectory ({KERNEL} @ {DEVICE}, "
        f"1 cold fit + {REFITS} drift refits per anchor):"
    ]
    for a in per_anchor:
        lines.append(
            f"  N={a['n_train']:4d} ({a['n_valid']:4d} valid): "
            f"classic {a['classic_wall_s']:7.2f} s / {a['classic_epochs']} ep"
            f"   adaptive {a['adaptive_wall_s']:7.2f} s / {a['adaptive_epochs']} ep"
            f"   {a['speedup']:.2f}x  (divergence {a['max_rel_divergence']:.3f})"
        )
    lines.append(
        f"  aggregate: {wall_c:.2f} s -> {wall_a:.2f} s = {speedup:.2f}x "
        f"(gate {MIN_SPEEDUP}x)"
    )
    emit("\n".join(lines))
    _append_trajectory({
        "bench": "campaign_fit_speedup",
        "kernel": KERNEL,
        "device": DEVICE,
        "refits": REFITS,
        "classic_wall_s": round(wall_c, 3),
        "adaptive_wall_s": round(wall_a, 3),
        "speedup": round(speedup, 2),
        "anchors": per_anchor,
    })
    assert speedup >= MIN_SPEEDUP, (
        f"campaign fit only {speedup:.2f}x faster (gate {MIN_SPEEDUP}x)"
    )


def test_warm_refit_spends_fewer_epochs():
    """Deterministic companion to the wall gate: warm refits must spend
    strictly fewer member-epochs than the cold fits they replace."""
    X, targets = _campaign_targets(500)
    _, _, ec, workc, _ = _run_campaign(X, targets, "classic")
    _, _, ea, worka, _ = _run_campaign(X, targets, "adaptive")
    emit(
        f"refit epoch spend (N=500): classic {ec} epochs / {workc} "
        f"member-epochs, adaptive {ea} epochs / {worka} member-epochs"
    )
    assert ea < ec
    assert worka < workc


@pytest.mark.slow
def test_tuner_pick_unchanged_by_adaptive_engine():
    """Freezing off, the adaptive engine is the classic engine bit for
    bit — so over PICK_SEEDS seeded end-to-end tunes the pick must
    never move."""
    spec = get_benchmark(KERNEL)

    def tune(seed, settings):
        ctx = Context(get_device(DEVICE), seed=seed)
        tuner = MLAutoTuner(ctx, spec, settings)
        return tuner.tune(np.random.default_rng(seed), model_seed=seed)

    classic = TunerSettings(n_train=300, m_candidates=30, fit_mode="classic")
    parity = TunerSettings(
        n_train=300,
        m_candidates=30,
        fit_mode="adaptive",
        freeze_patience=math.inf,
    )
    matched = 0
    for seed in range(PICK_SEEDS):
        c = tune(seed, classic)
        a = tune(seed, parity)
        assert a.best_index == c.best_index, (
            f"seed {seed}: adaptive pick {a.best_index} != "
            f"classic {c.best_index}"
        )
        assert a.best_time_s == c.best_time_s
        matched += 1
    emit(
        f"tuner pick parity ({KERNEL} @ {DEVICE}, N=300/M=30, "
        f"freeze disabled): {matched}/{PICK_SEEDS} seeds identical"
    )
    assert matched == PICK_SEEDS
