"""Shared benchmark helpers.

Each benchmark regenerates one of the paper's tables/figures (see
DESIGN.md §4) and prints the same rows/series the paper reports.  The
timed quantity is the full experiment at a bench-sized preset, so the
pytest-benchmark table doubles as a cost sheet for the reproduction.

Run everything:  pytest benchmarks/ --benchmark-only
Full-fidelity grids: REPRO_PRESET=full python -m repro.experiments.run_all
"""

import pytest

from repro.experiments.presets import Preset


def pytest_collection_modifyitems(items):
    """Every test in this directory is a benchmark: tag it ``bench`` so
    ``pytest -m bench`` / ``-m 'not bench'`` select the suite as a whole."""
    for item in items:
        item.add_marker(pytest.mark.bench)

#: Reduced grids so the whole benchmark suite finishes in minutes while
#: still exercising every axis of every figure.
BENCH_PRESET = Preset(
    name="bench",
    training_sizes=(100, 500, 2000),
    holdout=300,
    repeats=1,
    tuner_sizes=(500, 2000),
    tuner_m=(10, 50, 200),
    fig14_train=1000,
    fig14_m=100,
    fig14_random_budget=10000,
)


@pytest.fixture(scope="session")
def bench_preset():
    return BENCH_PRESET


@pytest.fixture(scope="session")
def conv_k40_pool():
    """Shared measured sample of convolution on the K40 for the ablations:
    (spec, oracle, train_idx, train_times, holdout_idx, holdout_times)."""
    import numpy as np

    from repro.experiments.oracle import TrueTimeOracle
    from repro.kernels import ConvolutionKernel
    from repro.simulator import NVIDIA_K40

    spec = ConvolutionKernel()
    oracle = TrueTimeOracle(spec, NVIDIA_K40)
    rng = np.random.default_rng(12)
    pool = spec.space.sample_indices(4200, rng)
    measured = oracle.measure(pool, rng)
    ok = ~np.isnan(measured)
    idx, times = pool[ok], measured[ok]
    assert idx.shape[0] > 2000
    return spec, oracle, idx[:1600], times[:1600], idx[1600:2000], times[1600:2000]


def emit(text: str) -> None:
    """Print a figure's regenerated series.

    pytest captures this; ``-rP`` (benchmarks/pytest.ini) replays the
    captured output of passing tests in the run summary, so the series
    land in the benchmark log either way (pass or fail)."""
    print(text)
