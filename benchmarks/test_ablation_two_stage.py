"""Ablation: the second stage (§5.3) and the one-at-a-time strawman (§5.1).

Four searchers with comparable measurement budgets, averaged over seeds
(single tuning runs are high-variance, and the paper's own grids have
missing cells where stage two drew only invalid candidates):

* model-argmin: trust the model, take its single best prediction;
* two-stage: measure the model's top-M and keep the best (the paper);
* random search with the same total budget (N + M measurements);
* coordinate descent (one-parameter-at-a-time) — the paper's §5.1 argument
  for why a model is needed at all.
"""

import numpy as np
from conftest import emit

from repro.core.measure import Measurer
from repro.core.model import PerformanceModel
from repro.core.search import coordinate_descent
from repro.experiments.oracle import TrueTimeOracle
from repro.kernels import ConvolutionKernel
from repro.runtime import Context
from repro.simulator import NVIDIA_K40

N_TRAIN, M, SEEDS = 1000, 100, (5, 6, 7)


def one_seed(spec, oracle, opt, seed):
    rng = np.random.default_rng(seed)
    train_idx = spec.space.sample_indices(N_TRAIN, rng)
    measured = oracle.measure(train_idx, rng)
    ok = ~np.isnan(measured)
    model = PerformanceModel(spec.space, seed=seed).fit(
        train_idx[ok], measured[ok]
    )

    top = model.top_m(M)
    argmin_time = oracle.time_of(int(top[0]))  # NaN if invalid

    stage2 = oracle.measure(top, rng)
    two_stage_time = float("nan")
    if not np.all(np.isnan(stage2)):
        two_stage_time = oracle.time_of(int(top[int(np.nanargmin(stage2))]))

    rand = spec.space.sample_indices(N_TRAIN + M, rng)
    rmeas = oracle.measure(rand, rng)
    random_time = oracle.time_of(int(rand[int(np.nanargmin(rmeas))]))

    measurer = Measurer(Context(NVIDIA_K40, seed=seed), spec)
    cd_idx, _, cd_budget, _ = coordinate_descent(measurer, rng, max_sweeps=3)
    cd_time = oracle.time_of(cd_idx) if cd_idx >= 0 else float("nan")

    return {
        "model-argmin": argmin_time / opt,
        "two-stage": two_stage_time / opt,
        "random": random_time / opt,
        "coordinate-descent": cd_time / opt,
        "cd_budget": cd_budget,
    }


def compare():
    spec = ConvolutionKernel()
    oracle = TrueTimeOracle(spec, NVIDIA_K40)
    _, opt = oracle.global_optimum()
    return [one_seed(spec, oracle, opt, s) for s in SEEDS]


def nanmean(runs, key):
    vals = [r[key] for r in runs if r[key] == r[key]]
    return float(np.mean(vals)) if vals else float("nan"), len(vals)


def test_two_stage_beats_alternatives(benchmark):
    runs = benchmark.pedantic(compare, rounds=1, iterations=1)

    rows = []
    for key in ("two-stage", "model-argmin", "random", "coordinate-descent"):
        mean, n_ok = nanmean(runs, key)
        mean_txt = "all-invalid" if mean != mean else f"{mean:.3f}x"
        rows.append(f"  {key:18s}: {mean_txt} of optimum ({n_ok}/{len(SEEDS)} seeds)")
    emit(
        f"Ablation: search strategy (convolution @ K40, N={N_TRAIN}, M={M}, "
        f"{len(SEEDS)} seeds)\n" + "\n".join(rows)
    )

    two_stage, ok_two = nanmean(runs, "two-stage")
    assert ok_two >= 2, "two-stage failed on most seeds"
    # Two-stage never does worse than blindly trusting the model argmin on
    # the seeds where both produced an answer (the argmin may be invalid,
    # which is the point of stage two).
    for r in runs:
        if r["two-stage"] == r["two-stage"] and r["model-argmin"] == r["model-argmin"]:
            assert r["two-stage"] <= r["model-argmin"] * 1.001
    # On average the learned approach beats equal-budget random search...
    random_mean, _ = nanmean(runs, "random")
    assert two_stage <= random_mean * 1.05
    # ...and one-at-a-time coordinate descent gets trapped away from the
    # optimum (§5.1's interaction argument).
    cd_mean, ok_cd = nanmean(runs, "coordinate-descent")
    if ok_cd:
        assert cd_mean > 1.03
