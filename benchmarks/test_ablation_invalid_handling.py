"""Ablation: handling invalid configurations (§7's future work, implemented).

The paper simply ignores invalid configurations during training, and notes
the consequence: the model can rank invalid regions first, occasionally
leaving stage two with *no* valid candidate.  Two "better schemes" are
implemented and compared here:

* **static filtering** (`TunerSettings(filter_known_invalid=True)`) —
  stage two over-proposes and screens candidates against the device's
  static limits before measuring;
* **penalized training** (`fit_measurements(..., invalid_penalty=10)`) —
  invalid configurations enter the training set with a 10x-slowest-valid
  target, so the model itself learns to rank them last.
"""

import numpy as np
from conftest import emit

from repro.core.measure import Measurer
from repro.core.model import PerformanceModel
from repro.core.tuner import MLAutoTuner, TunerSettings
from repro.kernels import ConvolutionKernel
from repro.runtime import Context
from repro.simulator import AMD_HD7970

N_TRAIN, M, SEEDS = 400, 40, (0, 1, 2)


def run_policies():
    spec = ConvolutionKernel()
    wasted = {"ignore": [], "filter": [], "penalize": []}
    ok_runs = {"ignore": 0, "filter": 0, "penalize": 0}

    for seed in SEEDS:
        # Policy 1 & 2 through the tuner.
        for policy, filt in (("ignore", False), ("filter", True)):
            ctx = Context(AMD_HD7970, seed=seed)
            tuner = MLAutoTuner(
                ctx,
                spec,
                TunerSettings(n_train=N_TRAIN, m_candidates=M,
                              filter_known_invalid=filt),
            )
            res = tuner.tune(np.random.default_rng(seed), model_seed=seed)
            wasted[policy].append(res.stage2_invalid)
            ok_runs[policy] += 0 if res.failed else 1

        # Policy 3: penalized-invalid training, manual stage two.
        ctx = Context(AMD_HD7970, seed=seed)
        measurer = Measurer(ctx, spec)
        ms = measurer.sample_and_measure(N_TRAIN, np.random.default_rng(seed))
        model = PerformanceModel(spec.space, seed=seed)
        model.fit_measurements(ms, invalid_penalty=10.0)
        top = model.top_m(M)
        stage2 = measurer.measure_batch(top)
        wasted["penalize"].append(stage2.n_invalid)
        ok_runs["penalize"] += 0 if stage2.n_valid == 0 else 1

    return wasted, ok_runs


def test_better_schemes_salvage_stage_two(benchmark):
    wasted, ok_runs = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    mean_wasted = {k: float(np.mean(v)) for k, v in wasted.items()}
    emit(
        f"Ablation: invalid handling (convolution @ HD 7970, N={N_TRAIN}, "
        f"M={M}, {len(SEEDS)} seeds) - stage-2 slots wasted / runs ok\n"
        f"  ignore (paper)     : {mean_wasted['ignore']:.1f}/{M}, "
        f"{ok_runs['ignore']}/{len(SEEDS)} ok\n"
        f"  static filtering   : {mean_wasted['filter']:.1f}/{M}, "
        f"{ok_runs['filter']}/{len(SEEDS)} ok\n"
        f"  penalized training : {mean_wasted['penalize']:.1f}/{M}, "
        f"{ok_runs['penalize']}/{len(SEEDS)} ok"
    )
    # Static filtering never wastes a slot and never fails.
    assert mean_wasted["filter"] == 0.0
    assert ok_runs["filter"] == len(SEEDS)
    # Penalized training wastes far less than ignoring and keeps working.
    assert mean_wasted["penalize"] < mean_wasted["ignore"]
    assert ok_runs["penalize"] == len(SEEDS)
    # The baseline policy demonstrably wastes slots on this device.
    assert mean_wasted["ignore"] > 0.0
