"""Figure 1: cross-device slowdowns of per-device optima (convolution).

Paper shape: using another device's best configuration costs real
performance — order 10-20x between CPU and GPU (17.1x for the K40 config
on the i7), around 3x between the two GPUs — and some transplants cannot
run at all.
"""

import math

from conftest import emit

from repro.experiments import fig01_motivation


def test_fig01_cross_device_slowdowns(benchmark):
    results = benchmark.pedantic(fig01_motivation.run, rounds=1, iterations=1)
    emit(fig01_motivation.format_text(results))

    m = results["matrix"]
    # Diagonal is 1 by construction.
    for d in results["devices"]:
        assert m[d][d] == 1.0

    # CPU <-> GPU transplants: order 10x+ when runnable.
    cpu_gpu = [m["intel"]["nvidia"], m["intel"]["amd"],
               m["nvidia"]["intel"], m["amd"]["intel"]]
    runnable = [s for s in cpu_gpu if s is not None]
    assert runnable, "every CPU<->GPU transplant came out invalid"
    assert max(runnable) > 5.0

    # GPU <-> GPU: meaningful but smaller penalty (paper: ~3x).
    gpu_gpu = [s for s in (m["nvidia"]["amd"], m["amd"]["nvidia"]) if s is not None]
    assert gpu_gpu, "both GPU<->GPU transplants invalid"
    for s in gpu_gpu:
        assert 1.2 < s < 10.0

    # The optima themselves differ across devices (the premise of §2).
    best_indices = {results["best"][d]["index"] for d in results["devices"]}
    assert len(best_indices) == 3
    for d in results["devices"]:
        assert math.isfinite(results["best"][d]["time_s"])
