"""Ablation: the ANN vs the related work's model families (§3).

Bergstra et al. [29] used boosted regression trees, Starchart [30] a
single recursive-partitioning tree, Magni et al. [26] nearest neighbours.
Same training data, same encoding, same log-transform — only the regressor
changes.  Expected ordering: the interaction-capable models (ANN, boosted
trees, forest) clearly beat the single tree, kNN and the linear model.
"""

from conftest import emit

from repro.core.model import PerformanceModel
from repro.ml import (
    GradientBoostedTrees,
    KNNRegressor,
    RandomForestRegressor,
    RegressionTree,
    RidgeRegression,
)

FAMILIES = {
    "ann": None,
    "boosted": lambda: GradientBoostedTrees(n_stages=150, seed=0),
    "tree": lambda: RegressionTree(max_depth=12),
    "forest": lambda: RandomForestRegressor(n_trees=40, seed=0),
    "knn": lambda: KNNRegressor(k=5),
    "linear": lambda: RidgeRegression(),
}


def sweep(spec, idx, times, hold_idx, hold_times):
    errors = {}
    for name, factory in FAMILIES.items():
        kwargs = dict(seed=0)
        if factory is not None:
            kwargs.update(base_factory=factory, k=5)
        model = PerformanceModel(spec.space, **kwargs).fit(idx, times)
        errors[name] = model.relative_error(hold_idx, hold_times)
    return errors


def test_model_families(benchmark, conv_k40_pool):
    spec, _, idx, times, hold_idx, hold_times = conv_k40_pool
    errors = benchmark.pedantic(
        sweep, args=(spec, idx, times, hold_idx, hold_times), rounds=1, iterations=1
    )
    emit(
        "Ablation: model family (convolution @ K40, N=1600)\n"
        + "\n".join(f"  {n:8s}: {e:.1%}" for n, e in sorted(errors.items(), key=lambda kv: kv[1]))
    )
    # The paper's ANN must be competitive with the strongest tree ensemble...
    assert errors["ann"] < 1.25 * min(errors["boosted"], errors["forest"])
    # ...and decisively better than the weak baselines.
    assert errors["ann"] < errors["linear"]
    assert errors["ann"] < errors["knn"]
    assert errors["ann"] < errors["tree"]
