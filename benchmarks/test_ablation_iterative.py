"""Ablation: one-shot pipeline (the paper) vs iterative refinement.

The paper spends its whole budget as one random batch plus one top-M
sweep.  The iterative extension re-invests intermediate models each round.
Compared at equal total measurement budgets on the K40.
"""

import numpy as np
from conftest import emit

from repro.core.iterative import IterativeSettings, IterativeTuner
from repro.core.tuner import MLAutoTuner, TunerSettings
from repro.experiments.oracle import TrueTimeOracle
from repro.kernels import ConvolutionKernel
from repro.runtime import Context
from repro.simulator import NVIDIA_K40

BUDGET = 600
SEEDS = (0, 1, 2)


def compare():
    spec = ConvolutionKernel()
    oracle = TrueTimeOracle(spec, NVIDIA_K40)
    _, opt = oracle.global_optimum()
    slowdowns = {"one-shot": [], "iterative": []}
    for seed in SEEDS:
        r1 = MLAutoTuner(
            Context(NVIDIA_K40, seed=seed),
            spec,
            TunerSettings(n_train=BUDGET - 100, m_candidates=100),
        ).tune(np.random.default_rng(seed), model_seed=seed)
        if not r1.failed:
            slowdowns["one-shot"].append(oracle.time_of(r1.best_index) / opt)
        r2 = IterativeTuner(
            Context(NVIDIA_K40, seed=seed),
            spec,
            IterativeSettings(total_budget=BUDGET, rounds=3),
        ).tune(np.random.default_rng(seed), model_seed=seed)
        if not r2.failed:
            slowdowns["iterative"].append(oracle.time_of(r2.best_index) / opt)
    return slowdowns


def test_iterative_refinement_competitive(benchmark):
    slowdowns = benchmark.pedantic(compare, rounds=1, iterations=1)
    mean = {k: float(np.mean(v)) if v else float("nan") for k, v in slowdowns.items()}
    emit(
        f"Ablation: budget layout (convolution @ K40, budget={BUDGET}, "
        f"{len(SEEDS)} seeds)\n"
        f"  one-shot (paper): {mean['one-shot']:.3f}x of optimum "
        f"({len(slowdowns['one-shot'])}/{len(SEEDS)} succeeded)\n"
        f"  iterative x3:     {mean['iterative']:.3f}x of optimum "
        f"({len(slowdowns['iterative'])}/{len(SEEDS)} succeeded)"
    )
    assert slowdowns["iterative"], "iterative tuner failed everywhere"
    # Iterative must be at least competitive at equal budget.
    if slowdowns["one-shot"]:
        assert mean["iterative"] < mean["one-shot"] * 1.15
    assert mean["iterative"] < 1.5
