"""§6 cost accounting: gathering the data dwarfs training the model.

Paper: ~30 min to gather 2000 convolution samples on the K40 (compiles,
runs, and wasted attempts on invalid configurations) vs ~1 min to train.
"""

from conftest import emit

from repro.experiments import cost_accounting as exp


def test_cost_gathering_dominates_training(benchmark):
    results = benchmark.pedantic(
        exp.run, kwargs={"n_train": 2000}, rounds=1, iterations=1
    )
    emit(exp.format_text(results))

    gather_min = results["gather_total_s"] / 60.0
    # Same order as the paper's ~30 minutes.
    assert 10.0 < gather_min < 90.0
    # Gathering must dwarf training by orders of magnitude.
    assert results["gather_total_s"] > 20 * results["train_wall_s"]
    # Compilation, not kernel runtime, is the dominant cost (§6).
    assert results["compile_s"] > results["run_s"]
    # Invalid configurations burn real time too.
    assert results["failed_s"] > 0
