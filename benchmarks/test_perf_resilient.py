"""Acceptance gate for the wave-based resilient batch engine.

The scenario the engine exists for: a large sweep on a *flaky* rig that
is *drifting* — fault injection (``flaky-gpu``) retries/quarantines
configurations while a thermal ramp (``thermal-throttle``) slides the
clock-dependent drift factor under every launch.  Before the wave
engine, faults or drift on the context degraded ``measure_batch`` to
the serial per-config loop; the gate pins the recovery:

* **speed** — the wave engine is at least ``MIN_SPEEDUP``x faster than
  the serial resilient loop on the same campaign;
* **equivalence** — same values, splits, ledger (including ``retry_s``),
  quarantine set and RNG stream position, compared exactly;
* **tuner pick** — a fault+drift tuning campaign run through the wave
  engine picks the same configuration at the same cost as one forced
  through the serial loop.

Each run appends a trajectory point to ``benchmarks/BENCH_resilient.json``.
"""

import json
import subprocess
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.measure import Measurer
from repro.core.tuner import MLAutoTuner, TunerSettings
from repro.kernels import ConvolutionKernel
from repro.runtime import Context
from repro.simulator import NVIDIA_K40

from conftest import emit

ARTIFACT = Path(__file__).parent / "BENCH_resilient.json"

#: Acceptance gate (ISSUE: wave-based resilient measurement).
MIN_SPEEDUP = 5.0

N_SWEEP = 6_000
FAULTS = "flaky-gpu"
DRIFT = "thermal-throttle"


def _append_trajectory(point: dict) -> None:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=Path(__file__).parent,
            timeout=10,
        ).stdout.strip() or "unknown"
    except Exception:
        rev = "unknown"
    point = {"git_rev": rev, **point}
    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(ARTIFACT.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(point)
    ARTIFACT.write_text(json.dumps(history, indent=2) + "\n")


@pytest.fixture(scope="module")
def conv():
    return ConvolutionKernel()


@pytest.fixture(scope="module")
def sweep_indices(conv):
    return conv.space.sample_indices(N_SWEEP, np.random.default_rng(42))


def _ledger_tuple(ledger):
    return (ledger.compile_s, ledger.run_s, ledger.failed_s, ledger.retry_s)


def test_wave_engine_speedup_and_bit_identity(conv, sweep_indices):
    """Wave engine >= 5x over the serial resilient loop, same results."""
    ctx_serial = Context(NVIDIA_K40, seed=7, faults=FAULTS, drift=DRIFT)
    ctx_wave = Context(NVIDIA_K40, seed=7, faults=FAULTS, drift=DRIFT)
    m_serial = Measurer(ctx_serial, conv, repeats=3)
    m_wave = Measurer(ctx_wave, conv, repeats=3)

    t0 = time.perf_counter()
    ref = m_serial.measure_batch_serial_resilient(sweep_indices)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    ms = m_wave.measure_batch(sweep_indices)
    t_wave = time.perf_counter() - t0

    # Bit-identical outcomes first — speed without equivalence is worthless.
    assert np.array_equal(ref.indices, ms.indices)
    assert np.array_equal(ref.times_s, ms.times_s)
    assert np.array_equal(ref.invalid_indices, ms.invalid_indices)
    assert np.array_equal(ref.quarantined_indices, ms.quarantined_indices)
    assert _ledger_tuple(ctx_serial.ledger) == _ledger_tuple(ctx_wave.ledger)
    assert m_serial.quarantine == m_wave.quarantine
    rng_word = lambda c: c.measurement.rng.bit_generator.state["state"]["state"]
    assert rng_word(ctx_serial) == rng_word(ctx_wave)

    speedup = t_serial / t_wave
    emit(
        f"resilient measurement, {N_SWEEP} convolution configs on the K40 "
        f"({FAULTS} + {DRIFT}):\n"
        f"  serial loop : {t_serial:8.3f} s "
        f"({N_SWEEP / t_serial:10,.0f} configs/s)\n"
        f"  wave engine : {t_wave:8.3f} s "
        f"({N_SWEEP / t_wave:10,.0f} configs/s)\n"
        f"  speedup     : {speedup:8.1f}x   "
        f"(waves: {m_wave.stats.n_waves}, "
        f"quarantined: {m_wave.stats.n_quarantined}, "
        f"retries: {m_wave.stats.n_retries})"
    )
    _append_trajectory({
        "n_sweep": N_SWEEP,
        "faults": FAULTS,
        "drift": DRIFT,
        "serial_s": round(t_serial, 4),
        "wave_s": round(t_wave, 4),
        "speedup": round(speedup, 2),
        "waves": m_wave.stats.n_waves,
        "quarantined": m_wave.stats.n_quarantined,
        "retries": m_wave.stats.n_retries,
        "gate_min_speedup": MIN_SPEEDUP,
    })
    assert speedup >= MIN_SPEEDUP, f"wave engine only {speedup:.1f}x faster"


def test_tuner_pick_unchanged_under_wave_engine(conv):
    """The tuner's pick and spend are invariant to which engine measures."""
    settings = TunerSettings(n_train=300, m_candidates=30, k_bag=7)
    picks = []
    for engine in ("wave", "serial"):
        ctx = Context(NVIDIA_K40, seed=13, faults=FAULTS, drift=DRIFT)
        tuner = MLAutoTuner(ctx, conv, settings)
        if engine == "serial":
            m = tuner.measurer
            m.measure_batch = m.measure_batch_serial_resilient
        result = tuner.tune(np.random.default_rng(13), model_seed=13)
        picks.append(
            (result.best_index, result.best_time_s, result.total_cost_s,
             _ledger_tuple(ctx.ledger))
        )
    assert picks[0] == picks[1]
