"""Acceptance gate for the ``repro.serve`` tuning daemon.

The daemon's reason to exist: a fleet of clients asking duplicate-heavy
questions should not each pay interpreter start-up plus a full campaign.
This bench pins that win:

* baseline — 8 *sequential cold-start CLI runs* (``python -m repro tune``
  in a fresh subprocess each time): the pre-daemon workflow;
* daemon — the same 8 requests from 8 *concurrent* clients against one
  server, where coalescing and the result cache collapse them into one
  campaign.

Gate: aggregate daemon throughput >= 2x the sequential-CLI throughput.
Each run appends requests/sec and p50/p99 client latency to
``benchmarks/BENCH_serve.json`` so regressions show up as a series.
"""

import json
import subprocess
import sys
import time
from pathlib import Path

from repro.serve.client import run_load
from repro.serve.server import ServerThread, TuningServer

from conftest import emit

ARTIFACT = Path(__file__).parent / "BENCH_serve.json"

#: Acceptance gate (ISSUE: serve daemon): concurrent duplicate-heavy
#: clients vs sequential cold-start CLI runs.
MIN_THROUGHPUT_GAIN = 2.0

N_CLIENTS = 8
N_TRAIN = 400
M_CAND = 40


def _append_trajectory(point: dict) -> None:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=Path(__file__).parent,
            timeout=10,
        ).stdout.strip() or "unknown"
    except Exception:
        rev = "unknown"
    point = {"git_rev": rev, **point}
    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(ARTIFACT.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(point)
    ARTIFACT.write_text(json.dumps(history, indent=2) + "\n")


def _cli_cold_start_baseline(n_runs: int) -> float:
    """Wall seconds for ``n_runs`` sequential cold CLI tunes (the
    pre-daemon workflow: fresh interpreter, no shared caches)."""
    cmd = [
        sys.executable, "-m", "repro", "tune",
        "-k", "convolution", "-d", "nvidia",
        "-n", str(N_TRAIN), "-m", str(M_CAND), "--seed", "0",
    ]
    t0 = time.perf_counter()
    for _ in range(n_runs):
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=600,
            cwd=Path(__file__).parent.parent, env={
                **__import__("os").environ, "PYTHONPATH": "src",
            },
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
    return time.perf_counter() - t0


def test_daemon_throughput_vs_sequential_cli():
    baseline_wall = _cli_cold_start_baseline(N_CLIENTS)
    baseline_rps = N_CLIENTS / baseline_wall

    server = TuningServer(max_pending=8, max_workers=4)
    with ServerThread(server) as port:
        summary = run_load(
            "127.0.0.1", port,
            n_clients=N_CLIENTS, requests_per_client=1,
            n_train=N_TRAIN, m_candidates=M_CAND,
        )
    assert summary["errors"] == []
    assert summary["completed"] == N_CLIENTS
    # The duplicate-heavy mix must actually coalesce: one campaign total.
    assert server.counters["campaigns"] == 1, server.counters

    gain = summary["req_per_s"] / baseline_rps
    emit(
        f"serve daemon vs sequential cold-start CLI "
        f"({N_CLIENTS} duplicate requests, convolution@nvidia, "
        f"n={N_TRAIN}, m={M_CAND}):\n"
        f"  CLI   : {baseline_wall:8.3f} s total "
        f"({baseline_rps:6.3f} req/s)\n"
        f"  daemon: {summary['wall_s']:8.3f} s total "
        f"({summary['req_per_s']:6.3f} req/s)\n"
        f"  p50 / p99 latency : {summary['p50_s']:.3f} s / "
        f"{summary['p99_s']:.3f} s\n"
        f"  campaigns run     : {server.counters['campaigns']} "
        f"(coalesced {server.counters['coalesced']}, "
        f"cached {server.counters['cache_hits']})\n"
        f"  throughput gain   : {gain:8.2f}x"
    )
    _append_trajectory(
        {
            "bench": "daemon_vs_sequential_cli",
            "clients": N_CLIENTS,
            "n_train": N_TRAIN,
            "m_candidates": M_CAND,
            "baseline_wall_s": round(baseline_wall, 3),
            "baseline_req_per_s": round(baseline_rps, 3),
            "daemon_wall_s": summary["wall_s"],
            "req_per_s": summary["req_per_s"],
            "p50_s": summary["p50_s"],
            "p99_s": summary["p99_s"],
            "campaigns": server.counters["campaigns"],
            "coalesced": server.counters["coalesced"],
            "cached": server.counters["cache_hits"],
            "throughput_gain": round(gain, 2),
        }
    )
    assert gain >= MIN_THROUGHPUT_GAIN, (
        f"daemon only {gain:.2f}x the sequential-CLI throughput "
        f"(gate: {MIN_THROUGHPUT_GAIN}x)"
    )
