"""Performance benchmarks of the library's hot paths.

These are conventional pytest-benchmark timings (multiple rounds) of the
operations the auto-tuner leans on: space indexing, bulk feature encoding,
simulator evaluation, ensemble training, and the whole-space prediction
sweep of stage two.  §5.3's premise — "it is orders of magnitude faster to
evaluate the model than to execute the actual benchmarks" — is asserted
directly.
"""

import numpy as np
import pytest

from repro.core.encoding import ConfigEncoder
from repro.core.model import PerformanceModel
from repro.experiments.oracle import TrueTimeOracle
from repro.kernels import ConvolutionKernel, StereoKernel
from repro.simulator import NVIDIA_K40
from repro.simulator.executor import simulate_kernel_time


@pytest.fixture(scope="module")
def conv():
    return ConvolutionKernel()


@pytest.fixture(scope="module")
def fitted_model(conv):
    oracle = TrueTimeOracle(conv, NVIDIA_K40)
    rng = np.random.default_rng(0)
    idx = conv.space.sample_indices(1200, rng)
    t = oracle.measure(idx, rng)
    ok = ~np.isnan(t)
    return PerformanceModel(conv.space, seed=0).fit(idx[ok], t[ok])


def test_perf_space_indexing(benchmark):
    space = StereoKernel().space  # the 2.36M-point space
    indices = np.arange(0, space.size, 997)

    def index_round_trip():
        total = 0
        for i in indices[:2000]:
            total += space.index_of_digits(space.digits_of(int(i)))
        return total

    benchmark(index_round_trip)


def test_perf_bulk_encoding(benchmark, conv):
    enc = ConfigEncoder(conv.space)
    idx = np.arange(conv.space.size, dtype=np.int64)
    X = benchmark(enc.encode_indices, idx)
    assert X.shape == (131072, 9)


def test_perf_simulator_evaluation(benchmark, conv):
    cfg = conv.space[12345]
    profile = conv.workload(cfg, NVIDIA_K40)

    def evaluate():
        return simulate_kernel_time(
            profile, NVIDIA_K40, jitter_key=("convolution", cfg.as_tuple())
        )

    t = benchmark(evaluate)
    assert t > 0


def test_perf_ensemble_training(benchmark, conv):
    oracle = TrueTimeOracle(conv, NVIDIA_K40)
    rng = np.random.default_rng(1)
    idx = conv.space.sample_indices(900, rng)
    t = oracle.measure(idx, rng)
    ok = ~np.isnan(t)

    def train():
        return PerformanceModel(conv.space, seed=1).fit(idx[ok], t[ok])

    benchmark.pedantic(train, rounds=2, iterations=1)


def test_perf_whole_space_prediction(benchmark, conv, fitted_model):
    """Stage two sweeps all 131072 configurations; the paper's feasibility
    argument requires this to be far cheaper than measuring them."""
    pred = benchmark(fitted_model.predict_all)
    assert pred.shape == (131072,)
    assert np.all(pred > 0)


def test_model_evaluation_orders_of_magnitude_cheaper(benchmark, conv, fitted_model):
    """§5.3 quantified: predicted-seconds-per-config (model) vs simulated
    measurement seconds per config (device)."""
    import time

    def measure_gap():
        t0 = time.perf_counter()
        pred = fitted_model.predict_all()
        model_s_per_config = (time.perf_counter() - t0) / conv.space.size
        return float(np.mean(pred)), model_s_per_config

    mean_kernel_s, model_s_per_config = benchmark.pedantic(
        measure_gap, rounds=1, iterations=1
    )
    # Kernel runtime alone is ~2-3 orders above a model evaluation; a real
    # measurement additionally pays ~0.5 s of kernel compilation per config
    # (see the §6 cost accounting), so the true gap is far larger still.
    assert mean_kernel_s > 100 * model_s_per_config
