"""Acceptance gate for the parallel scheduler + persistent oracle store.

Pins the ``run_all`` contract from the scheduler/store PR:

* each (kernel, device) full ground-truth table is computed exactly once
  per store lifetime (hit/miss counters, asserted cold and warm);
* a warm-store parallel run (``jobs=2``) of the oracle-dominated fig01
  experiment is >= 3x faster than the pre-PR behaviour (serial, no store,
  tables recomputed in-run);
* the mixed fig01 + fig11-13 + sec7 subset still beats the sum of
  separate per-experiment runs (the pre-PR ``run_all`` loop) warm;
* parallel rendered output is bit-identical to serial.

Each run appends a trajectory point (walls, speedups, counters) to
``benchmarks/BENCH_run_all.json`` so regressions show up as a series.
"""

import json
import subprocess
import time
from pathlib import Path

import pytest

from repro.experiments.oracle_store import OracleStore
from repro.experiments.presets import Preset
from repro.experiments.run_all import run_all
from repro.obs import Tracer
from repro.obs.summary import summarize

from conftest import emit

ARTIFACT = Path(__file__).parent / "BENCH_run_all.json"

#: Acceptance gates (ISSUE: parallel scheduler + oracle store).
MIN_WARM_SPEEDUP = 3.0  # warm store + jobs=2, oracle-dominated subset
MIN_MIXED_SPEEDUP = 1.25  # warm store + jobs=2 vs per-experiment serial

#: Tiny but axis-complete preset: the timed quantity is scheduling and
#: table (re)computation, not grid size.
MICRO = Preset(
    name="micro",
    training_sizes=(100,),
    holdout=80,
    repeats=1,
    tuner_sizes=(100,),
    tuner_m=(10,),
    fig14_train=200,
    fig14_m=30,
    fig14_random_budget=500,
    sec7_n_train=150,
    sec7_holdout=100,
    sec7_n_base=40,
    sec7_invalid_n=800,
)

MIXED = ["fig01", "fig11-13", "sec7"]


def _append_trajectory(point: dict) -> None:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=Path(__file__).parent,
            timeout=10,
        ).stdout.strip() or "unknown"
    except Exception:
        rev = "unknown"
    point = {"git_rev": rev, **point}
    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(ARTIFACT.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(point)
    ARTIFACT.write_text(json.dumps(history, indent=2) + "\n")


def _timed_run(**kw):
    t0 = time.perf_counter()
    rendered = run_all(preset=MICRO, seed=0, stream=None, **kw)
    return rendered, time.perf_counter() - t0


@pytest.fixture(scope="module")
def warm_store(tmp_path_factory):
    """A store populated by one cold serial run of the mixed subset.

    Asserts the cold half of the exactly-once contract on the way: three
    (convolution, device) tables missed, computed, and saved — once each,
    no matter how many of the three experiments read them.
    """
    root = tmp_path_factory.mktemp("oracle-store")
    store = OracleStore(root)
    rendered, cold_wall = _timed_run(only=MIXED, oracle_store=store)
    assert store.stats["full_miss"] == 3, store.stats
    assert store.stats["full_saved"] == 3, store.stats
    return root, rendered, cold_wall


def test_warm_store_parallel_speedup(warm_store, tmp_path):
    """Headline gate: warm store + 2 workers >= 3x over pre-PR serial."""
    root, _, _ = warm_store
    _, base_wall = _timed_run(only=["fig01"])  # pre-PR: no store, serial

    trace = tmp_path / "warm.trace.jsonl"
    tracer = Tracer(trace)
    try:
        _, warm_wall = _timed_run(
            only=["fig01"], jobs=2, oracle_store=OracleStore(root),
            tracer=tracer,
        )
    finally:
        tracer.close()
    counters = summarize(trace).counters
    # Warm half of the exactly-once contract: zero recomputes, all hits.
    assert counters.get("oracle_store.full_miss", 0) == 0, counters
    assert counters.get("oracle_store.full_saved", 0) == 0, counters
    assert counters.get("oracle_store.full_hit", 0) >= 3, counters

    speedup = base_wall / warm_wall
    emit(
        f"run_all --only fig01 (micro preset):\n"
        f"  serial, no store   : {base_wall:8.3f} s\n"
        f"  warm store, jobs=2 : {warm_wall:8.3f} s\n"
        f"  speedup            : {speedup:8.2f}x"
    )
    _append_trajectory(
        {
            "bench": "warm_store_parallel_fig01",
            "baseline_s": round(base_wall, 3),
            "warm_s": round(warm_wall, 3),
            "speedup": round(speedup, 2),
            "full_hits": int(counters.get("oracle_store.full_hit", 0)),
        }
    )
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm parallel run only {speedup:.2f}x faster than pre-PR serial"
    )


def test_mixed_subset_beats_per_experiment_runs(warm_store):
    """The pre-PR run_all ran experiments one by one, each recomputing its
    own tables; warm scheduling must beat the sum of those runs."""
    root, _, cold_wall = warm_store
    base_wall = 0.0
    for exp in MIXED:
        _, wall = _timed_run(only=[exp])
        base_wall += wall
    _, warm_wall = _timed_run(
        only=MIXED, jobs=2, oracle_store=OracleStore(root)
    )
    speedup = base_wall / warm_wall
    emit(
        f"run_all --only {','.join(MIXED)} (micro preset):\n"
        f"  per-experiment serial, no store : {base_wall:8.3f} s\n"
        f"  cold store, serial (one run)    : {cold_wall:8.3f} s\n"
        f"  warm store, jobs=2              : {warm_wall:8.3f} s\n"
        f"  warm speedup                    : {speedup:8.2f}x"
    )
    _append_trajectory(
        {
            "bench": "warm_store_parallel_mixed",
            "baseline_s": round(base_wall, 3),
            "cold_s": round(cold_wall, 3),
            "warm_s": round(warm_wall, 3),
            "speedup": round(speedup, 2),
        }
    )
    assert speedup >= MIN_MIXED_SPEEDUP, (
        f"warm mixed run only {speedup:.2f}x faster than per-experiment runs"
    )


def test_parallel_output_bit_identical_to_serial(warm_store):
    root, cold_rendered, _ = warm_store
    parallel, _ = _timed_run(
        only=MIXED, jobs=2, oracle_store=OracleStore(root)
    )
    assert parallel == cold_rendered
