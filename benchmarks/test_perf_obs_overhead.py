"""Microbenchmark of the observability layer's overhead.

Pins the acceptance criterion of the tracing instrumentation: with the
default :data:`NULL_TRACER`, the instrumented 10K-configuration batch
sweep must pay less than 3% over the raw engine cost.  The disabled path
is a handful of attribute lookups per *batch* (never per configuration),
so the gate is measured two ways:

* end-to-end — median sweep time with the NullTracer vs. with a live
  in-memory Tracer (reported for the benchmark log);
* analytically — the per-call cost of the disabled primitives times the
  number of instrumentation sites a sweep actually executes, as a
  fraction of the measured sweep time.  This is the asserted gate: it is
  deterministic where an A/B wall-clock diff of two near-identical runs
  is noise-dominated.
"""

import time

import numpy as np
import pytest

from repro.core.measure import Measurer
from repro.kernels import ConvolutionKernel
from repro.obs import NULL_TRACER, Tracer
from repro.runtime import Context
from repro.simulator import NVIDIA_K40

from conftest import emit

N_SWEEP = 10_000

#: Disabled-tracer operations executed by one measure_batch call: the
#: span() + __enter__/__exit__ wrapper plus the `tracer.enabled` guard
#: around the stats/counter block.  Generous upper bound.
OPS_PER_SWEEP = 16


@pytest.fixture(scope="module")
def conv():
    return ConvolutionKernel()


@pytest.fixture(scope="module")
def sweep_indices(conv):
    return conv.space.sample_indices(N_SWEEP, np.random.default_rng(42))


def _median_sweep_time(conv, sweep_indices, tracer, reps=5):
    times = []
    for _ in range(reps):
        ctx = Context(NVIDIA_K40, seed=7, tracer=tracer)
        m = Measurer(ctx, conv, repeats=3)
        t0 = time.perf_counter()
        m.measure_batch(sweep_indices)
        times.append(time.perf_counter() - t0)
    return sorted(times)[len(times) // 2]


def test_disabled_tracer_overhead_under_3pct(conv, sweep_indices):
    """Instrumentation with NULL_TRACER costs <3% of a 10K-config sweep."""
    t_sweep = _median_sweep_time(conv, sweep_indices, NULL_TRACER)

    # Per-op cost of the disabled primitives, measured directly.
    n_ops = 100_000
    t0 = time.perf_counter()
    for _ in range(n_ops):
        with NULL_TRACER.span("x", n=1) as sp:
            sp.set(a=2)
        NULL_TRACER.count("c")
        NULL_TRACER.gauge("g", 1.0)
        if NULL_TRACER.enabled:  # the guard pattern used at call sites
            pytest.fail("NULL_TRACER must be disabled")
    t_per_op = (time.perf_counter() - t0) / n_ops

    overhead_s = t_per_op * OPS_PER_SWEEP
    fraction = overhead_s / t_sweep
    emit(
        f"observability overhead, {N_SWEEP} convolution configs on the K40:\n"
        f"  sweep (NullTracer)  : {t_sweep * 1e3:9.3f} ms\n"
        f"  null-op bundle cost : {t_per_op * 1e9:9.1f} ns\n"
        f"  est. overhead/sweep : {overhead_s * 1e6:9.2f} us "
        f"({fraction * 100:.4f}% of sweep)"
    )
    assert fraction < 0.03, (
        f"disabled-tracer overhead {fraction * 100:.2f}% >= 3% of the sweep"
    )


def test_enabled_tracer_overhead_informational(conv, sweep_indices):
    """A live in-memory tracer should still be cheap; logged, not gated
    (an A/B wall-clock diff of two ~equal runs is noise-dominated)."""
    t_null = _median_sweep_time(conv, sweep_indices, NULL_TRACER)
    tracer = Tracer()  # in-memory sink
    t_live = _median_sweep_time(conv, sweep_indices, tracer, reps=3)
    emit(
        f"live in-memory tracer on the same sweep:\n"
        f"  NullTracer : {t_null * 1e3:8.3f} ms\n"
        f"  Tracer     : {t_live * 1e3:8.3f} ms "
        f"({(t_live / t_null - 1) * 100:+.1f}%)"
    )
    # Sanity: the live tracer actually recorded the sweep spans.
    assert any(r["name"] == "measure.batch" for r in tracer.records
               if r["type"] == "span")


def test_perf_instrumented_sweep_throughput(benchmark, conv, sweep_indices):
    """pytest-benchmark row for the instrumented (disabled-tracer) sweep."""
    def run():
        m = Measurer(Context(NVIDIA_K40, seed=7), conv, repeats=3)
        return m.measure_batch(sweep_indices)

    ms = benchmark(run)
    assert ms.n_valid + ms.n_invalid == N_SWEEP
