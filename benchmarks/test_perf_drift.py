"""Acceptance gate for online drift recovery (``repro.core.online``).

The scenario: a campaign tunes once, then the machine shifts under it —
a contention regime arrives whose per-configuration quirks *reorder* the
space, so the pre-shift pick is no longer optimal and re-scaling alone
cannot recover.  The online tuner must (a) notice, via the CUSUM
residual detector, and (b) recover *incrementally* — re-measuring a
small transfer-ranked window instead of re-running the campaign.

Gates:

* **quality** — the post-recovery incumbent's drifted true time is
  within ``MAX_OPTIMALITY_GAP`` of the post-shift oracle optimum over
  the whole space;
* **cost** — the recovery (alarm-answering) ledger spend is at most
  ``MAX_RETUNE_COST_FRACTION`` of the from-scratch campaign's.

Everything is deterministic (profile-seeded drift, seeded campaign), so
the gate either always passes or always fails for a given tree.  Each
run appends the recovery trajectory to ``benchmarks/BENCH_drift.json``.

The scenario runs twice: once with warm-started refits (the default the
gates apply to) and once with cold refits as a control — warm starts
must never spend more refit epochs, and the recovery ledger spend must
stay equal or better.
"""

import json
import subprocess
from pathlib import Path

import numpy as np

from repro.core.drift import DetectorSettings
from repro.core.online import OnlineSettings, OnlineTuner
from repro.core.tuner import TunerSettings
from repro.experiments.oracle import TrueTimeOracle
from repro.kernels import get_benchmark
from repro.runtime import Context
from repro.simulator import NVIDIA_K40
from repro.simulator.drift import DriftModel, get_drift_profile

from conftest import emit

ARTIFACT = Path(__file__).parent / "BENCH_drift.json"

#: Acceptance gates (ISSUE: online drift re-tuning).
MAX_OPTIMALITY_GAP = 1.05         # drifted_true(pick) vs post-shift optimum
MAX_RETUNE_COST_FRACTION = 0.50   # recovery spend vs from-scratch tune

KERNEL = "convolution"
N_TRAIN = 400
M_CAND = 40
SEED = 0
INTERVAL_S = 30.0
STEPS = 120
CAL = 24
WINDOW = 64


def _append_trajectory(point: dict) -> None:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=Path(__file__).parent,
            timeout=10,
        ).stdout.strip() or "unknown"
    except Exception:
        rev = "unknown"
    point = {"git_rev": rev, **point}
    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(ARTIFACT.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(point)
    ARTIFACT.write_text(json.dumps(history, indent=2) + "\n")


def _run_scenario(warm_start_refits: bool):
    spec = get_benchmark(KERNEL)
    tune_settings = TunerSettings(n_train=N_TRAIN, m_candidates=M_CAND)

    # The drift onset must land after the initial tune plus the
    # detector's calibration window; both are deterministic, so probe the
    # tune cost with a throwaway context first.
    probe = Context(NVIDIA_K40, seed=SEED)
    from repro.core.tuner import MLAutoTuner

    MLAutoTuner(probe, spec, tune_settings).tune(
        np.random.default_rng(SEED), model_seed=SEED
    )
    c0 = probe.ledger.total_s
    onset = c0 + (CAL + 4) * INTERVAL_S

    # Single everlasting post-shift regime: a deterministic 1.25x global
    # contention level plus per-config quirks that reorder the space.
    profile = get_drift_profile(
        "noisy-neighbor:"
        f"onset_s={onset:.1f},regime_duration_s=1e9,"
        "contention_min=1.25,contention_max=1.25,contention_sigma=0.04"
    )
    ctx = Context(NVIDIA_K40, seed=SEED, drift=DriftModel(profile))
    online = OnlineTuner(
        ctx,
        spec,
        settings=OnlineSettings(
            steps=STEPS,
            step_interval_s=INTERVAL_S,
            detector=DetectorSettings(calibration=CAL),
            retune_window=WINDOW,
            warm_start_refits=warm_start_refits,
        ),
        tune_settings=tune_settings,
    )
    report = online.run(np.random.default_rng(SEED), model_seed=SEED)
    return ctx, report


def test_online_recovery_quality_and_cost():
    # The gated path is the default configuration: warm-started refits.
    # A cold-refit control run quantifies what warm starts save; its
    # only gate is that warm never spends *more* refit epochs.
    ctx, report = _run_scenario(warm_start_refits=True)
    _, cold_report = _run_scenario(warm_start_refits=False)
    spec = get_benchmark(KERNEL)

    assert not report.initial.failed
    assert report.alarms >= 1, "regime shift was never detected"
    assert report.retunes, "no incremental re-tune completed"

    # Post-shift oracle: base true times x the drift factors frozen at
    # the end-of-campaign clock (the regime is everlasting, so any
    # post-shift instant gives the same table).
    t_end = ctx.drift.time_of(ctx.ledger)
    assert ctx.drift.regime_at(t_end) >= 1
    oracle = TrueTimeOracle(spec, NVIDIA_K40)
    base = oracle.full_table()
    valid = np.flatnonzero(~np.isnan(base))
    tuples = [spec.space[int(i)].as_tuple() for i in valid]
    factors = np.asarray(ctx.drift.factors_at(t_end, spec.name, tuples))
    drifted = base[valid] * factors

    pick_pos = int(np.flatnonzero(valid == report.incumbent)[0])
    pick_time = float(drifted[pick_pos])
    optimum = float(drifted.min())
    gap = pick_time / optimum

    # What the pre-shift pick would have cost if nobody re-tuned: the
    # regression the online loop exists to catch.
    stale_pos = int(np.flatnonzero(valid == report.initial.best_index)[0])
    stale_gap = float(drifted[stale_pos]) / optimum

    cost_fraction = report.retune_cost_s / report.initial_cost_s

    warm_fit_epochs = sum(e.fit_epochs for e in report.retunes)
    cold_fit_epochs = sum(e.fit_epochs for e in cold_report.retunes)
    warm_fit_wall = report.retune_fit_wall_s
    cold_fit_wall = cold_report.retune_fit_wall_s

    emit(
        "online drift recovery (convolution @ K40, 1.25x regime + quirks)\n"
        f"  from-scratch tune cost : {report.initial_cost_s:9.1f} s\n"
        f"  monitoring cost        : {report.monitor_cost_s:9.1f} s "
        f"({STEPS} probes)\n"
        f"  recovery cost          : {report.retune_cost_s:9.1f} s "
        f"({len(report.retunes)} re-tune(s), {cost_fraction:.1%} of tune)\n"
        f"  stale-pick gap         : {stale_gap:9.3f}x post-shift optimum\n"
        f"  recovered-pick gap     : {gap:9.3f}x post-shift optimum "
        f"(gate {MAX_OPTIMALITY_GAP}x)\n"
        f"  alarms / re-tunes      : {report.alarms} / {len(report.retunes)}\n"
        f"  refit spend (warm)     : {warm_fit_epochs} epochs, "
        f"{warm_fit_wall:.2f} s wall\n"
        f"  refit spend (cold ctl) : {cold_fit_epochs} epochs, "
        f"{cold_fit_wall:.2f} s wall"
    )
    _append_trajectory({
        "kernel": KERNEL,
        "initial_cost_s": round(report.initial_cost_s, 3),
        "monitor_cost_s": round(report.monitor_cost_s, 3),
        "retune_cost_s": round(report.retune_cost_s, 3),
        "cost_fraction": round(cost_fraction, 4),
        "alarms": report.alarms,
        "retunes": [e.as_dict() for e in report.retunes],
        "stale_gap": round(stale_gap, 4),
        "recovered_gap": round(gap, 4),
        "optimum_s": optimum,
        "pick_s": pick_time,
        "warm_fit_epochs": warm_fit_epochs,
        "cold_fit_epochs": cold_fit_epochs,
        "warm_fit_wall_s": round(warm_fit_wall, 3),
        "cold_fit_wall_s": round(cold_fit_wall, 3),
    })

    assert gap <= MAX_OPTIMALITY_GAP, (
        f"recovered pick is {gap:.3f}x the post-shift optimum "
        f"(gate {MAX_OPTIMALITY_GAP}x)"
    )
    assert cost_fraction <= MAX_RETUNE_COST_FRACTION, (
        f"recovery cost {report.retune_cost_s:.1f}s is "
        f"{cost_fraction:.1%} of the from-scratch tune "
        f"(gate {MAX_RETUNE_COST_FRACTION:.0%})"
    )
    # Warm starts are the default: they must never spend *more* training
    # epochs answering an alarm than cold refits would (deterministic —
    # wall time on a shared box is reported, not gated).
    assert report.retunes and cold_report.retunes
    assert warm_fit_epochs <= cold_fit_epochs, (
        f"warm refits spent {warm_fit_epochs} epochs vs "
        f"{cold_fit_epochs} cold"
    )
    # The recovery itself must stay as good and as cheap as the cold
    # control's (simulated ledger seconds are deterministic).
    assert report.retune_cost_s <= cold_report.retune_cost_s * 1.05
