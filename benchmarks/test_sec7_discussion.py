"""§7 "Further Discussions": the paper's three mechanisms, quantified.

Paper claims being checked: (1) memory-space parameters have less effect
on the CPU (all spaces map to the same physical memory) except for the
emulated-image cliff; (2) AMD's pragma-based unrolling makes convolution
and stereo harder to predict than manually-unrolled raycasting; (3) there
are fewer invalid configurations on the CPU.
"""

from conftest import emit

from repro.experiments import sec7_discussion as exp


def test_sec7_mechanisms(benchmark):
    results = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    emit(exp.format_text(results))

    # (1) Code-generation knobs and work-group shape move GPUs more.
    sens = results["sensitivity"]
    for p in ("wg_x", "wg_y", "interleaved", "unroll"):
        assert sens["nvidia"][p] > sens["intel"][p], p
    # The noted exception: emulated images keep use_image huge on the CPU.
    assert sens["intel"]["use_image"] > sens["nvidia"]["use_image"]

    # (2) Raycasting (manual macros) clearly best-predicted on AMD.
    err = results["amd_errors"]
    assert err["raycasting"] < err["convolution"] - 0.02
    assert err["raycasting"] < err["stereo"] - 0.02

    # (3) Fewer invalid configurations on the CPU.
    inv = results["invalid"]
    assert inv["intel"] < inv["nvidia"] < 0.6
    assert inv["intel"] < inv["amd"] < 0.6
