"""Figure 14: tuning the 655K/2.36M-point spaces (raycasting, stereo).

Paper shape: with N+M a fraction of a percent of the space, the tuner
matches — occasionally beats — the best of a 50K-configuration random
search.  (The paper's stereo-on-GPU cells are missing due to all-invalid
predictions; our harness reports such failures the same way when they
occur.)
"""

from conftest import emit

from repro.experiments import fig14_large_spaces as fig


def test_fig14_large_space_tuning(benchmark, bench_preset):
    results = benchmark.pedantic(
        fig.run, kwargs={"preset": bench_preset}, rounds=1, iterations=1
    )
    emit(fig.format_text(results))

    succeeded = 0
    for (bench_name, device), cell in results["cells"].items():
        if cell.get("failed"):
            # The paper's own failure mode; must be reported, not hidden.
            assert cell["reason"]
            continue
        succeeded += 1
        # Within ~25% of (sometimes better than) a 10x larger random budget.
        # Stereo on the GPUs is the paper's known-hard cell (often *missing*
        # there); when it does succeed at bench-sized budgets, allow a
        # weaker result rather than demanding parity.
        hard_cell = bench_name == "stereo" and device in ("nvidia", "amd")
        upper = 2.0 if hard_cell else 1.3
        assert 0.7 < cell["slowdown"] < upper, (bench_name, device, cell["slowdown"])
        # Budget bookkeeping: we really did evaluate a tiny fraction.
        space = 655360 if bench_name == "raycasting" else 2359296
        frac = (cell["n_train"] + cell["m"]) / space
        assert frac < 0.01
    assert succeeded >= 3, "large-space tuning failed almost everywhere"
