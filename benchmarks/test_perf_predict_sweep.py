"""Microbenchmark + acceptance gate of the fused prediction-sweep engine.

Pins the sweep engine's contract on a >= 500K-configuration sweep
(raycasting: 655,360 configs):

* the float64 lane is >= 4x faster than the chunked reference path
  (``PerformanceModel.predict_indices_reference``) in a single process;
* its predictions match the reference to <= 1e-9 relative;
* the end-to-end tuner picks the *same* configuration with the engine on
  and off at the fig11 paper-anchor settings (N=2000/M=200, N=500/M=100).

Each run also appends a trajectory point (configs/sec, speedup, peak
RSS) to ``benchmarks/BENCH_sweep.json`` so regressions show up as a
series, not just a pass/fail bit.
"""

import json
import resource
import subprocess
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.model import PerformanceModel
from repro.core.sweep import SweepSettings
from repro.core.tuner import MLAutoTuner, TunerSettings
from repro.experiments.oracle import TrueTimeOracle
from repro.kernels import ConvolutionKernel, RaycastingKernel
from repro.runtime import Context
from repro.simulator import NVIDIA_K40

from conftest import emit

ARTIFACT = Path(__file__).parent / "BENCH_sweep.json"

#: Acceptance gates (ISSUE: fused sweep engine).
MIN_SPEEDUP = 4.0
MAX_REL_ERR = 1e-9
MIN_SPACE = 500_000


@pytest.fixture(scope="module")
def ray_model():
    """A fitted model over the 655K-config raycasting space."""
    spec = RaycastingKernel()
    assert spec.space.size >= MIN_SPACE
    oracle = TrueTimeOracle(spec, NVIDIA_K40)
    rng = np.random.default_rng(21)
    idx = spec.space.sample_indices(800, rng)
    t = oracle.measure(idx, rng)
    ok = ~np.isnan(t)
    model = PerformanceModel(spec.space, seed=21).fit(idx[ok], t[ok])
    return spec, model


def _append_trajectory(point: dict) -> None:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=Path(__file__).parent,
            timeout=10,
        ).stdout.strip() or "unknown"
    except Exception:
        rev = "unknown"
    point = {"git_rev": rev, **point}
    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(ARTIFACT.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(point)
    ARTIFACT.write_text(json.dumps(history, indent=2) + "\n")


def test_sweep_speedup_and_parity(ray_model):
    """The headline gate: >= 4x single-process, <= 1e-9 relative."""
    spec, model = ray_model
    n = spec.space.size
    all_idx = np.arange(n, dtype=np.int64)

    t0 = time.perf_counter()
    ref = model.predict_indices_reference(all_idx)
    t_ref = time.perf_counter() - t0

    # Fresh model object so the sweeper compiles inside the timed region
    # exactly once, as it would for a tuner's single post-fit sweep.
    swept = PerformanceModel(spec.space, seed=21)
    swept._model = model._model
    t0 = time.perf_counter()
    pred = swept.predict_all()
    t_sweep = time.perf_counter() - t0

    rel = float(np.max(np.abs(pred - ref) / np.abs(ref)))
    speedup = t_ref / t_sweep
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024

    emit(
        f"prediction sweep, {n:,} raycasting configs (K40 model):\n"
        f"  reference (chunked): {t_ref:8.3f} s "
        f"({n / t_ref:12,.0f} configs/s)\n"
        f"  fused sweeper (f64): {t_sweep:8.3f} s "
        f"({n / t_sweep:12,.0f} configs/s)\n"
        f"  speedup            : {speedup:8.2f}x\n"
        f"  max relative error : {rel:.3e}\n"
        f"  peak RSS           : {peak_rss_mb:8.0f} MB"
    )
    _append_trajectory(
        {
            "bench": "sweep_speedup_and_parity",
            "space": spec.name,
            "n_configs": int(n),
            "reference_s": round(t_ref, 4),
            "sweep_s": round(t_sweep, 4),
            "configs_per_sec": round(n / t_sweep),
            "baseline_configs_per_sec": round(n / t_ref),
            "speedup": round(speedup, 2),
            "max_rel_err": rel,
            "peak_rss_mb": round(peak_rss_mb),
        }
    )
    assert rel <= MAX_REL_ERR, f"float64 lane off by {rel:.2e} relative"
    assert speedup >= MIN_SPEEDUP, f"sweeper only {speedup:.2f}x faster"


def test_streaming_top_m_matches_full_selection(ray_model):
    """Streaming top-M over 655K configs == selection over the full
    prediction array, element for element."""
    from repro.core.sweep import select_top_m

    spec, model = ray_model
    pred = model.predict_all()
    _, want = select_top_m(pred, np.arange(spec.space.size, dtype=np.int64), 300)
    got = model.top_m(300)
    np.testing.assert_array_equal(got, want)


def test_float32_lane_throughput_and_overlap(ray_model):
    spec, model = ray_model
    n = spec.space.size
    fast = PerformanceModel(
        spec.space, seed=21, sweep=SweepSettings(dtype="float32")
    )
    fast._model = model._model
    t0 = time.perf_counter()
    top_fast = fast.top_m(300)
    t_f32 = time.perf_counter() - t0
    overlap = len(set(top_fast.tolist()) & set(model.top_m(300).tolist())) / 300
    emit(
        f"float32 lane, {n:,} configs: {t_f32:.3f} s "
        f"({n / t_f32:,.0f} configs/s), top-300 overlap {overlap:.1%}"
    )
    assert overlap >= 0.99


@pytest.mark.parametrize("n_train,m", [(2000, 200), (500, 100)])
def test_tuner_pick_unchanged_by_engine(n_train, m):
    """The engine is a perf change, not a semantic one: at the fig11
    paper-anchor settings the tuner's best_index must not move."""
    spec = ConvolutionKernel()

    def tune(sweep):
        ctx = Context(NVIDIA_K40, seed=13)
        settings = TunerSettings(n_train=n_train, m_candidates=m, sweep=sweep)
        tuner = MLAutoTuner(ctx, spec, settings)
        return tuner.tune(np.random.default_rng(13), model_seed=13)

    on = tune(SweepSettings())
    off = tune(SweepSettings(enabled=False))
    emit(
        f"tuner pick, N={n_train}, M={m}: engine on -> {on.best_index}, "
        f"off -> {off.best_index}"
    )
    assert on.best_index == off.best_index
    assert on.best_time_s == off.best_time_s


def test_perf_sweep_throughput(benchmark, ray_model):
    """The sweeper alone (compile + whole-space top-M) for the benchmark
    table."""
    spec, model = ray_model

    def run():
        m = PerformanceModel(spec.space, seed=21)
        m._model = model._model
        return m.top_m(300)

    top = benchmark(run)
    assert top.shape == (300,)
