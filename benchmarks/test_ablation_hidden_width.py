"""Ablation: hidden-layer width (§5.2).

"Through experimentation, we found that a network with a single hidden
layer with 30 neurons ... gave good performance."  This bench redoes the
experimentation: tiny networks underfit, and growth past ~30 buys little —
the paper's choice should sit at the knee.
"""

from conftest import emit

from repro.core.encoding import ConfigEncoder
from repro.ml.ensemble import EnsembleMLPRegressor
from repro.ml.metrics import mean_relative_error

import numpy as np

WIDTHS = (2, 8, 30, 60)


def sweep(spec, idx, times, hold_idx, hold_times):
    enc = ConfigEncoder(spec.space)
    X, y = enc.encode_indices(idx), np.log(times)
    Xv = enc.encode_indices(hold_idx)
    errors = {}
    for h in WIDTHS:
        m = EnsembleMLPRegressor(k=11, hidden=h, seed=0).fit(X, y)
        errors[h] = mean_relative_error(np.exp(m.predict(Xv)), hold_times)
    return errors


def test_hidden_width_knee_around_30(benchmark, conv_k40_pool):
    spec, _, idx, times, hold_idx, hold_times = conv_k40_pool
    errors = benchmark.pedantic(
        sweep, args=(spec, idx, times, hold_idx, hold_times), rounds=1, iterations=1
    )
    emit(
        "Ablation: hidden width (convolution @ K40, N=1600)\n"
        + "\n".join(f"  {h:>3d} neurons: {errors[h]:.1%}" for h in WIDTHS)
    )
    # Severe underfit at width 2.
    assert errors[2] > errors[30] * 1.15
    # Past the knee: doubling the width changes little.
    assert abs(errors[60] - errors[30]) < 0.05
