"""Figures 4-6: mean prediction error vs number of training samples.

Paper shape: error falls with training size and flattens around 1000-2000
samples; the CPU is clearly better-predicted than the GPUs (6.1-8.3% vs
12.5-14.7% and 12.6-21.2% at N=4000); on the AMD GPU raycasting is the
best-predicted benchmark (manual rather than driver unrolling, §7).
"""

import pytest
from conftest import emit

from repro.experiments import fig04_06_model_error as fig


def _curves_for(device, bench_preset, seed=0):
    return fig.run(preset=bench_preset, devices=(device,), seed=seed)


@pytest.fixture(scope="module")
def all_results(bench_preset):
    # One shared run across the three device benches would hide per-device
    # cost; instead each bench times its own device and this fixture only
    # hosts the cross-device assertions' cache.
    return {}


def _check_decreasing(curve):
    sizes = sorted(curve["errors"])
    first, last = curve["errors"][sizes[0]], curve["errors"][sizes[-1]]
    assert last < first, "error should fall with more training data"


def test_fig04_intel_error_curve(benchmark, bench_preset, all_results):
    results = benchmark.pedantic(
        _curves_for, args=("intel", bench_preset), rounds=1, iterations=1
    )
    emit(fig.format_text(results))
    all_results["intel"] = results
    for b in results["benchmarks"]:
        _check_decreasing(results["curves"][("intel", b)])
    top_n = max(results["sizes"])
    errs = [results["curves"][("intel", b)]["errors"][top_n] for b in results["benchmarks"]]
    assert min(errs) < 0.12  # paper band 6.1-8.3% at N=4000


def test_fig05_nvidia_error_curve(benchmark, bench_preset, all_results):
    results = benchmark.pedantic(
        _curves_for, args=("nvidia", bench_preset), rounds=1, iterations=1
    )
    emit(fig.format_text(results))
    all_results["nvidia"] = results
    for b in results["benchmarks"]:
        _check_decreasing(results["curves"][("nvidia", b)])
    top_n = max(results["sizes"])
    errs = [results["curves"][("nvidia", b)]["errors"][top_n] for b in results["benchmarks"]]
    assert 0.08 < min(errs) < 0.25  # paper band 12.5-14.7%


def test_fig06_amd_error_curve(benchmark, bench_preset, all_results):
    results = benchmark.pedantic(
        _curves_for, args=("amd", bench_preset), rounds=1, iterations=1
    )
    emit(fig.format_text(results))
    for b in results["benchmarks"]:
        _check_decreasing(results["curves"][("amd", b)])
    top_n = max(results["sizes"])
    errors = {
        b: results["curves"][("amd", b)]["errors"][top_n]
        for b in results["benchmarks"]
    }
    # §7: raycasting (manual unrolling) is the AMD-friendly benchmark.
    assert errors["raycasting"] < errors["convolution"]
    assert errors["raycasting"] < errors["stereo"]

    # Cross-device ordering: CPU beats GPUs when both were benched.
    if "intel" in all_results and "nvidia" in all_results:
        intel = all_results["intel"]["curves"]
        nvidia = all_results["nvidia"]["curves"]
        intel_best = min(
            intel[("intel", b)]["errors"][top_n] for b in ("convolution", "raycasting", "stereo")
        )
        gpu_best = min(
            min(nvidia[("nvidia", b)]["errors"][top_n], errors[b])
            for b in ("convolution", "raycasting", "stereo")
        )
        assert intel_best < gpu_best
