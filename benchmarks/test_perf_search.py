"""Acceptance gate for the search-strategy zoo and its bandit meta-tuner.

The scenario mirrors the paper's fig. 11 anchors: the ANN auto-tuner
tunes convolution on each main device at both paper budgets, then the
UCB bandit gets *exactly the same ledger budget* (the ANN run's total
simulated seconds) to split across its five search-strategy arms.

Gates:

* **quality** — on every anchor, the bandit's pick is within
  ``MAX_BANDIT_GAP`` of the ANN tuner's pick in oracle true time;
* **robustness** — the bandit's pick beats the *worst* single strategy
  (each given the same ledger budget, run alone) on at least
  ``MIN_BEAT_WORST`` of the anchors — the meta-tuner's whole job is to
  not be stuck with a bad strategy choice;
* **determinism** — a bandit run is bit-reproducible from its seed.

Everything is seeded, so the gates either always pass or always fail
for a given tree.  Each run appends a point per anchor to
``benchmarks/BENCH_search.json`` — ``bandit_gap`` is the headline.
"""

import json
import subprocess
from pathlib import Path

import numpy as np

from repro.core.measure import Measurer
from repro.core.strategies import (
    DEFAULT_ARMS,
    BanditMetaTuner,
    SearchSettings,
    make_strategy,
    run_search,
)
from repro.core.tuner import MLAutoTuner, TunerSettings
from repro.experiments.oracle import TrueTimeOracle
from repro.kernels import get_benchmark
from repro.runtime import Context
from repro.simulator import DEVICES

from conftest import emit

ARTIFACT = Path(__file__).parent / "BENCH_search.json"

#: Acceptance gates (ISSUE: search-strategy zoo + bandit meta-tuner).
MAX_BANDIT_GAP = 1.10   # bandit pick vs ANN pick, oracle true time
MIN_BEAT_WORST = 0.80   # fraction of anchors where bandit <= worst arm

KERNEL = "convolution"
SEED = 0
BATCH = 48
EXPLORE = 0.5
#: Paper budgets (n_train, m_candidates) from the fig. 11 anchors.
SIZES = ((2000, 200), (500, 100))
MAIN = ("nvidia", "intel", "amd")
#: k_bag trimmed from the paper default: the gate compares *search*
#: quality at equal ledger spend, and the smaller committee keeps the
#: ANN reference runs to seconds without moving its picks materially.
K_BAG = 11


def _append_trajectory(point: dict) -> None:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=Path(__file__).parent,
            timeout=10,
        ).stdout.strip() or "unknown"
    except Exception:
        rev = "unknown"
    point = {"git_rev": rev, **point}
    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(ARTIFACT.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(point)
    ARTIFACT.write_text(json.dumps(history, indent=2) + "\n")


def _bandit_fingerprint(device_key: str, max_cost_s: float):
    """One bandit run reduced to a bit-comparable tuple."""
    settings = SearchSettings(budget=10**9, batch=BATCH, max_cost_s=max_cost_s)
    m = Measurer(Context(DEVICES[device_key], seed=SEED), get_benchmark(KERNEL))
    out = BanditMetaTuner(m, settings, explore=EXPLORE).run(
        np.random.default_rng(SEED)
    )
    return (
        out.best_index,
        float.hex(out.best_time_s),
        float.hex(m.context.ledger.total_s),
        tuple(
            (e.name, e.pulls, e.n_measured, float.hex(e.spend_s))
            for e in out.leaderboard()
        ),
    ), out


def _run_anchor(device_key: str, n_train: int, m_candidates: int):
    spec = get_benchmark(KERNEL)
    oracle = TrueTimeOracle(spec, DEVICES[device_key])
    _, optimum = oracle.global_optimum()

    # Reference: the paper's ANN auto-tuner at this budget.  Its ledger
    # spend defines the equal budget every search strategy gets.
    ctx = Context(DEVICES[device_key], seed=SEED)
    tuner = MLAutoTuner(
        ctx, spec,
        TunerSettings(n_train=n_train, m_candidates=m_candidates, k_bag=K_BAG),
    )
    ann = tuner.tune(np.random.default_rng(SEED), model_seed=SEED)
    assert not ann.failed
    ann_cost = ctx.ledger.total_s
    ann_true = oracle.time_of(ann.best_index)

    _, bandit = _bandit_fingerprint(device_key, ann_cost)
    bandit_true = oracle.time_of(bandit.best_index)

    settings = SearchSettings(budget=10**9, batch=BATCH, max_cost_s=ann_cost)
    singles = {}
    for name in DEFAULT_ARMS:
        m = Measurer(Context(DEVICES[device_key], seed=SEED), spec)
        out = run_search(
            m, make_strategy(name, m, settings), np.random.default_rng(SEED),
            settings,
        )
        singles[name] = (
            oracle.time_of(out.best_index)
            if out.best_index >= 0 else float("inf")
        )
    worst_name = max(singles, key=singles.get)
    return {
        "device": device_key,
        "n_train": n_train,
        "m_candidates": m_candidates,
        "budget_s": round(ann_cost, 3),
        "optimum_s": optimum,
        "ann_true_s": ann_true,
        "bandit_true_s": bandit_true,
        "bandit_gap": round(bandit_true / ann_true, 4),
        "bandit_vs_optimum": round(bandit_true / optimum, 4),
        "worst_arm": worst_name,
        "worst_vs_optimum": round(singles[worst_name] / optimum, 4),
        "singles_vs_optimum": {
            k: round(v / optimum, 4) for k, v in singles.items()
        },
        "beat_worst": bool(bandit_true <= singles[worst_name]),
    }


def test_bandit_matches_ann_at_equal_budget():
    anchors = [
        _run_anchor(dev, n, m) for dev in MAIN for (n, m) in SIZES
    ]

    # Determinism: re-run the first anchor's bandit and compare bits.
    fp1, _ = _bandit_fingerprint(MAIN[0], anchors[0]["budget_s"])
    fp2, _ = _bandit_fingerprint(MAIN[0], anchors[0]["budget_s"])
    assert fp1 == fp2, "bandit run is not bit-reproducible from its seed"

    beat = sum(a["beat_worst"] for a in anchors)
    lines = [
        "bandit meta-tuner vs ANN auto-tuner at equal ledger budget "
        f"({KERNEL}, fig. 11 anchors)"
    ]
    for a in anchors:
        lines.append(
            f"  {a['device']:>6} N={a['n_train']:<4} M={a['m_candidates']:<3}"
            f" budget={a['budget_s']:7.0f}s"
            f"  bandit {a['bandit_vs_optimum']:.3f}x opt"
            f"  gap {a['bandit_gap']:.3f}x ann (gate {MAX_BANDIT_GAP}x)"
            f"  worst arm {a['worst_arm']} {a['worst_vs_optimum']:.3f}x"
        )
    lines.append(
        f"  beat worst arm on {beat}/{len(anchors)} anchors "
        f"(gate {MIN_BEAT_WORST:.0%})"
    )
    emit("\n".join(lines))

    worst_gap = max(a["bandit_gap"] for a in anchors)
    _append_trajectory({
        "kernel": KERNEL,
        "bandit_gap": worst_gap,
        "beat_worst_fraction": round(beat / len(anchors), 4),
        "anchors": anchors,
    })

    for a in anchors:
        assert a["bandit_gap"] <= MAX_BANDIT_GAP, (
            f"{a['device']} N={a['n_train']}: bandit pick is "
            f"{a['bandit_gap']:.3f}x the ANN pick (gate {MAX_BANDIT_GAP}x)"
        )
    assert beat >= MIN_BEAT_WORST * len(anchors), (
        f"bandit beat the worst single strategy on only {beat}/"
        f"{len(anchors)} anchors (gate {MIN_BEAT_WORST:.0%})"
    )
