"""Input-aware tuning: one model, many problem sizes (§8 future work).

Train a single performance model on convolution measurements gathered at
several image sizes, with the problem size as extra features.  For a *new*
size the model has never measured, its top-M window plus a handful of
stage-two measurements recovers a near-optimal configuration — versus
re-running the whole stage-one campaign from scratch.

Run:  python examples/input_aware_tuning.py
"""

import numpy as np

from repro.core.input_aware import InputAwareModel
from repro.experiments.oracle import TrueTimeOracle
from repro.kernels.convolution import ConvolutionKernel, ConvolutionProblem
from repro.simulator import NVIDIA_K40

TRAIN_SIZES = (512, 1024, 4096)
TARGET_SIZE = 2048
PER_SIZE_SAMPLES = 500
M = 40


def main() -> None:
    rng = np.random.default_rng(21)
    model = InputAwareModel(ConvolutionKernel, seed=21)

    print(f"training one model across image sizes {TRAIN_SIZES} "
          f"({PER_SIZE_SAMPLES} samples each) on {NVIDIA_K40.name}")
    samples = []
    for edge in TRAIN_SIZES:
        problem = ConvolutionProblem(edge, edge, 5)
        spec = model.spec_for(problem)
        oracle = TrueTimeOracle(spec, NVIDIA_K40)
        idx = spec.space.sample_indices(PER_SIZE_SAMPLES, rng)
        t = oracle.measure(idx, rng)
        ok = ~np.isnan(t)
        samples.extend((problem, int(i), float(x)) for i, x in zip(idx[ok], t[ok]))
        print(f"  {edge}x{edge}: {int(ok.sum())} valid measurements")
    model.fit(samples)

    target = ConvolutionProblem(TARGET_SIZE, TARGET_SIZE, 5)
    spec = model.spec_for(target)
    oracle = TrueTimeOracle(spec, NVIDIA_K40)

    print(f"\ntarget size {TARGET_SIZE}x{TARGET_SIZE} (never measured):")
    top = model.top_m(target, M)
    stage2 = oracle.measure(top, rng)
    pick = int(top[int(np.nanargmin(stage2))])
    tuned = oracle.time_of(pick)
    _, opt = oracle.global_optimum()
    print(f"  stage-two measurements : {M}")
    print(f"  tuned configuration    : {dict(spec.space[pick])}")
    print(f"  time                   : {tuned * 1e3:.3f} ms")
    print(f"  global optimum         : {opt * 1e3:.3f} ms "
          f"(slowdown {tuned / opt:.3f}x)")
    print(f"\nfor comparison, a from-scratch campaign at this size would "
          f"re-measure hundreds of configurations before its model exists.")


if __name__ == "__main__":
    main()
