"""Tuning for a novel architecture: the Xeon Phi (§8 future work).

The method is architecture-agnostic — nothing in the tuner knows what a
warp or a core is.  This example points it at a many-core device model
(Xeon Phi 5110P: CPU-style emulation, GPU-scale parallelism), checks the
model accuracy lands between the CPU's and the GPUs', and shows that the
Phi's best configuration is yet another point in configuration space that
neither the i7's nor the K40's optimum predicts.

Run:  python examples/novel_architecture.py
"""

import numpy as np

from repro import Context, Measurer, MLAutoTuner, PerformanceModel, TunerSettings
from repro.experiments.oracle import TrueTimeOracle
from repro.kernels import ConvolutionKernel
from repro.simulator import INTEL_I7_3770, NVIDIA_K40
from repro.simulator.extra_devices import XEON_PHI_5110P


def main() -> None:
    spec = ConvolutionKernel()
    seed = 17

    # Model accuracy on the new architecture.
    ctx = Context(XEON_PHI_5110P, seed=seed)
    measurer = Measurer(ctx, spec)
    rng = np.random.default_rng(seed)
    pool = measurer.sample_and_measure(2600, rng)
    idx, t = pool.indices, pool.times_s
    assert pool.n_valid > 1400, "unexpectedly high invalid fraction"
    model = PerformanceModel(spec.space, seed=seed).fit(idx[:1200], t[:1200])
    err = model.relative_error(idx[1200:], t[1200:])
    print(f"{XEON_PHI_5110P.name}: model error {err:.1%} "
          f"(paper's CPU: 6-8%, GPUs: 12-21%)")

    # Tune it.
    tuner = MLAutoTuner(ctx, spec, TunerSettings(n_train=800, m_candidates=80))
    result = tuner.tune(np.random.default_rng(seed))
    assert not result.failed
    phi_best = spec.space[result.best_index]
    print(f"tuned configuration: {dict(phi_best)}")
    print(f"time: {result.best_time_s * 1e3:.3f} ms")

    # How do the other devices' optima fare here?
    phi_oracle = TrueTimeOracle(spec, XEON_PHI_5110P)
    print("\ntransplanting other devices' optima onto the Phi:")
    for dev in (INTEL_I7_3770, NVIDIA_K40):
        foreign_best, _ = TrueTimeOracle(spec, dev).global_optimum()
        t_here = phi_oracle.time_of(foreign_best)
        own = phi_oracle.time_of(result.best_index)
        if t_here != t_here:
            print(f"  best {dev.name} config: INVALID on the Phi")
        else:
            print(f"  best {dev.name} config: {t_here / own:.2f}x slower than "
                  "the Phi-tuned one")


if __name__ == "__main__":
    main()
