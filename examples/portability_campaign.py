"""A deployment-style campaign: tune one kernel for a whole device fleet.

`PortabilityCampaign` runs the auto-tuner on every device, records every
measurement in a persistent store, and prints the matrix a deployment
engineer wants: per-device tuned times plus the cost of shipping any
single configuration fleet-wide (the Fig. 1 story, for your kernel).

Run:  python examples/portability_campaign.py
"""

import tempfile
from pathlib import Path

from repro.core.campaign import PortabilityCampaign
from repro.core.results import MeasurementDB
from repro.core.tuner import TunerSettings
from repro.kernels import ConvolutionKernel


def main() -> None:
    spec = ConvolutionKernel()
    db_path = Path(tempfile.gettempdir()) / "repro_campaign.json"
    db = MeasurementDB(db_path)

    campaign = PortabilityCampaign(
        spec,
        devices=("intel", "nvidia", "amd"),
        settings=TunerSettings(n_train=600, m_candidates=60),
        db=db,
    )
    print(f"tuning {spec.name} across 3 devices "
          f"({spec.space.size} configurations each) ...\n")
    result = campaign.run(seed=8)
    print(result.report())
    print(f"\n{len(db)} measurements persisted to {db_path}")

    # The single-config compromise: if you had to ship ONE configuration,
    # the best choice minimizes the worst transplant penalty -- and is
    # still far worse than per-device tuning.
    devices = list(result.results)
    best_compromise, best_worst = None, float("inf")
    for source in devices:
        worst = max(
            (result.slowdown(t, source) for t in devices),
            key=lambda v: (v != v, v),  # NaN sorts worst
        )
        if worst == worst and worst < best_worst:
            best_compromise, best_worst = source, worst
    if best_compromise is not None:
        print(
            f"\nshipping one config fleet-wide: best compromise is the "
            f"{best_compromise}-tuned one, still {best_worst:.1f}x slower "
            "somewhere - the paper's case for automatic per-device re-tuning."
        )


if __name__ == "__main__":
    main()
