"""Model families head-to-head as the tuner's performance model.

The paper chose a bagged ANN; its related work used boosted regression
trees (Bergstra et al.), a single regression tree (Starchart), nearest
neighbours (Magni et al.) and linear models.  This example trains each
family on the same stage-one sample of the stereo benchmark and compares
(a) held-out mean relative error and (b) the quality of the configuration
a two-stage tuner built on that model would return.

Run:  python examples/compare_models.py
"""

import time

import numpy as np

from repro.core.model import PerformanceModel
from repro.experiments.oracle import TrueTimeOracle
from repro.kernels import StereoKernel
from repro.ml import (
    GradientBoostedTrees,
    KNNRegressor,
    RandomForestRegressor,
    RegressionTree,
    RidgeRegression,
)
from repro.simulator import NVIDIA_K40

FAMILIES = {
    "bagged ANN (paper)": None,  # PerformanceModel's default
    "boosted trees [29]": lambda: GradientBoostedTrees(n_stages=150, seed=0),
    "regression tree [30]": lambda: RegressionTree(max_depth=12),
    "random forest": lambda: RandomForestRegressor(n_trees=40, seed=0),
    "k-nearest neighbours": lambda: KNNRegressor(k=5),
    "ridge (linear)": lambda: RidgeRegression(),
}

N_TRAIN, N_HOLD, M = 1500, 400, 100


def main() -> None:
    spec = StereoKernel()
    device = NVIDIA_K40
    oracle = TrueTimeOracle(spec, device)
    rng = np.random.default_rng(9)

    pool = spec.space.sample_indices(int((N_TRAIN + N_HOLD) * 2.2), rng)
    measured = oracle.measure(pool, rng)
    ok = ~np.isnan(measured)
    idx, times = pool[ok], measured[ok]
    train_i, train_t = idx[:N_TRAIN], times[:N_TRAIN]
    hold_i, hold_t = idx[N_TRAIN : N_TRAIN + N_HOLD], times[N_TRAIN : N_TRAIN + N_HOLD]

    print(f"{spec.name} on {device.name}: {N_TRAIN} training samples, "
          f"{N_HOLD} held out, two-stage M={M}\n")
    print(f"{'model':24s} {'holdout MRE':>12s} {'tuned time':>12s} {'fit time':>9s}")

    for label, factory in FAMILIES.items():
        kwargs = dict(seed=0) if factory is None else dict(seed=0, base_factory=factory, k=5)
        t0 = time.perf_counter()
        model = PerformanceModel(spec.space, **kwargs).fit(train_i, train_t)
        fit_s = time.perf_counter() - t0
        err = model.relative_error(hold_i, hold_t)

        top = model.top_m(M)
        stage2 = oracle.measure(top, np.random.default_rng(1))
        if np.all(np.isnan(stage2)):
            tuned = float("nan")
        else:
            tuned = oracle.time_of(int(top[int(np.nanargmin(stage2))]))
        tuned_txt = "all-invalid" if tuned != tuned else f"{tuned * 1e3:9.2f} ms"
        print(f"{label:24s} {err:11.1%} {tuned_txt:>12s} {fit_s:8.1f}s")


if __name__ == "__main__":
    main()
