"""Quickstart: auto-tune the convolution benchmark for an Nvidia K40.

Runs the paper's full pipeline (Fig. 3) with a small budget:

1. measure 600 random configurations on the (simulated) device;
2. train the bagged-ANN performance model on log(time);
3. predict all 131,072 configurations, measure the best-predicted 60;
4. report the winner, and compare it against the known global optimum
   (which only the simulator's oracle can see — a real device can't).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Context, MLAutoTuner, TunerSettings
from repro.experiments.oracle import TrueTimeOracle
from repro.kernels import ConvolutionKernel
from repro.simulator import NVIDIA_K40


def main() -> None:
    seed = 42
    spec = ConvolutionKernel()
    ctx = Context(NVIDIA_K40, seed=seed)

    settings = TunerSettings(n_train=600, m_candidates=60)
    tuner = MLAutoTuner(ctx, spec, settings)
    print(f"tuning {spec.name} on {ctx.device.name} "
          f"(space: {spec.space.size} configurations)")

    result = tuner.tune(np.random.default_rng(seed))

    if result.failed:
        print("tuner failed: every stage-two candidate was invalid "
              "(increase n_train / m_candidates)")
        return

    best = spec.space[result.best_index]
    print(f"\nbest configuration found : {dict(best)}")
    print(f"measured time            : {result.best_time_s * 1e3:.3f} ms")
    print(f"configurations evaluated : {result.evaluated_fraction:.2%} of the space")
    print(f"simulated tuning cost    : {result.total_cost_s / 60:.1f} min "
          f"(compiles + runs + failures)")

    # Evaluation-only peek at the ground truth.
    oracle = TrueTimeOracle(spec, NVIDIA_K40)
    _, opt = oracle.global_optimum()
    print(f"\nglobal optimum (oracle)  : {opt * 1e3:.3f} ms")
    print(f"slowdown vs optimum      : {oracle.time_of(result.best_index) / opt:.3f}x")


if __name__ == "__main__":
    main()
