"""Performance portability in action: re-tune instead of porting configs.

The paper's motivating scenario (§2): a configuration tuned for one device
can be badly slow on another, even between two GPUs.  This example tunes
the raycasting benchmark for the Nvidia K40, transplants the result to the
AMD HD 7970 and the Intel i7, and then re-tunes on each target — showing
both the portability cliff and how cheaply the ML auto-tuner recovers it.

Run:  python examples/cross_device_portability.py
"""

import numpy as np

from repro import Context, MLAutoTuner, TunerSettings
from repro.experiments.oracle import TrueTimeOracle
from repro.kernels import RaycastingKernel
from repro.simulator import AMD_HD7970, INTEL_I7_3770, NVIDIA_K40

DEVICES = [NVIDIA_K40, AMD_HD7970, INTEL_I7_3770]
SETTINGS = TunerSettings(n_train=800, m_candidates=80)


def tune_on(spec, device, seed):
    ctx = Context(device, seed=seed)
    tuner = MLAutoTuner(ctx, spec, SETTINGS)
    return tuner.tune(np.random.default_rng(seed))


def main() -> None:
    spec = RaycastingKernel()
    oracles = {d.name: TrueTimeOracle(spec, d) for d in DEVICES}

    print(f"tuning {spec.name} on {NVIDIA_K40.name} ...")
    home = tune_on(spec, NVIDIA_K40, seed=1)
    assert not home.failed
    cfg = spec.space[home.best_index]
    print(f"  K40-tuned config: {dict(cfg)}")
    print(f"  time on K40: {oracles[NVIDIA_K40.name].time_of(home.best_index) * 1e3:.2f} ms\n")

    for target in (AMD_HD7970, INTEL_I7_3770):
        oracle = oracles[target.name]
        transplanted = oracle.time_of(home.best_index)
        print(f"on {target.name}:")
        if transplanted != transplanted:  # NaN
            print("  transplanted K40 config: INVALID (resource limits)")
        else:
            print(f"  transplanted K40 config: {transplanted * 1e3:.2f} ms")
        retuned = tune_on(spec, target, seed=2)
        if retuned.failed:
            print("  re-tuning failed (all stage-two candidates invalid)")
            continue
        t = oracle.time_of(retuned.best_index)
        print(f"  re-tuned config:         {t * 1e3:.2f} ms")
        if transplanted == transplanted:
            print(f"  re-tuning speedup:       {transplanted / t:.2f}x")
        print()


if __name__ == "__main__":
    main()
