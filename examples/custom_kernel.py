"""Bring your own kernel: tuning a user-defined benchmark.

The library is not limited to the paper's three benchmarks.  Any workload
that can describe (a) its tuning-parameter space, (b) how a configuration
maps to work and traffic, and (c) a functional NumPy implementation can be
tuned.  This example defines a parameterized *matrix transpose* — a classic
tiling/coalescing playground — and runs the two-stage tuner on it.

Run:  python examples/custom_kernel.py
"""

from dataclasses import dataclass

import numpy as np

from repro import Context, MLAutoTuner, TunerSettings
from repro.kernels.base import KernelSpec, padded_threads
from repro.params import ParameterSpace, boolean, pow2
from repro.simulator import AMD_HD7970, NVIDIA_K40
from repro.simulator.workload import WorkloadProfile


@dataclass(frozen=True)
class TransposeProblem:
    n: int = 4096  # square matrix edge


class TransposeKernel(KernelSpec):
    """Out-of-place float32 matrix transpose.

    Parameters: work-group shape, elements per thread, whether to stage
    tiles in local memory (turns the scattered writes into coalesced ones),
    and tile padding (avoids local-memory bank conflicts).
    """

    name = "transpose"

    @classmethod
    def paper_problem(cls):
        return TransposeProblem()

    def _build_space(self) -> ParameterSpace:
        return ParameterSpace(
            [
                pow2("wg_x", 1, 64, "Work-group size in x"),
                pow2("wg_y", 1, 64, "Work-group size in y"),
                pow2("ept", 1, 8, "Elements per thread (column chunk)"),
                boolean("use_local", "Stage tiles in local memory"),
                boolean("pad_tile", "Pad local tile to dodge bank conflicts"),
            ]
        )

    def workload(self, config, device) -> WorkloadProfile:
        n = self.problem.n
        wx, wy, ept = config["wg_x"], config["wg_y"], config["ept"]
        use_local = bool(config["use_local"])
        pad_tile = bool(config["pad_tile"])

        gx = padded_threads(n, 1, wx)
        gy = padded_threads(n, ept, wy)
        threads = gx * gy
        elems = ept * min(1.0, n * n / (threads * ept))

        local_bytes = 0
        local_reads = local_writes = 0.0
        if use_local:
            tile_w, tile_h = wx, wy * ept
            local_bytes = (tile_w + (1 if pad_tile else 0)) * tile_h * 4
            local_reads = local_writes = elems
            # Both global streams coalesced through the tile; unpadded
            # tiles serialize on bank conflicts, modelled as extra traffic.
            conflict = 1.0 if pad_tile else 1.6
            local_reads *= conflict
            coal = 0.95
            locality = 0.6
        else:
            # Direct transpose: reads coalesced, writes fully strided
            # (row-length apart), which also defeats the cache.
            coal = 0.55
            locality = 0.15
        return WorkloadProfile(
            global_size=(gx, gy),
            workgroup=(wx, wy),
            flops_per_thread=4.0 * elems,
            global_reads=elems,
            global_writes=elems,
            local_reads=local_reads,
            local_writes=local_writes,
            local_mem_per_wg_bytes=local_bytes,
            registers_per_thread=10 + 2 * ept,
            coalesced_fraction=coal,
            spatial_locality=locality,
            footprint_bytes=2.0 * n * n * 4,
            loop_iterations_per_thread=float(ept),
            barriers_per_workgroup=2.0 if use_local else 0.0,
            wg_footprint_bytes=2.0 * wx * wy * ept * 4,
        )

    def make_inputs(self, rng):
        n = self.problem.n
        return {"a": rng.random((n, n), dtype=np.float32)}

    def reference(self, inputs):
        return inputs["a"].T.copy()

    def run(self, config, inputs):
        a = inputs["a"]
        n = self.problem.n
        out = np.empty_like(a)
        tile_w = config["wg_x"]
        tile_h = config["wg_y"] * config["ept"]
        for y0 in range(0, n, tile_h):
            for x0 in range(0, n, tile_w):
                y1, x1 = min(y0 + tile_h, n), min(x0 + tile_w, n)
                out[x0:x1, y0:y1] = a[y0:y1, x0:x1].T
        return out


def main() -> None:
    spec = TransposeKernel(TransposeProblem(4096))
    print(f"custom kernel: {spec.name}, space of {spec.space.size} configurations")

    # Functional sanity on a small instance before tuning the big one.
    small = TransposeKernel(TransposeProblem(64))
    rng = np.random.default_rng(0)
    inputs = small.make_inputs(rng)
    cfg = small.space[17]
    assert np.array_equal(small.run(cfg, inputs), small.reference(inputs))
    print("functional check passed (config path == reference)")

    for device in (NVIDIA_K40, AMD_HD7970):
        ctx = Context(device, seed=3)
        tuner = MLAutoTuner(ctx, spec, TunerSettings(n_train=300, m_candidates=30))
        result = tuner.tune(np.random.default_rng(3))
        if result.failed:
            print(f"{device.name}: tuning failed (all candidates invalid)")
            continue
        best = spec.space[result.best_index]
        print(f"\n{device.name}:")
        print(f"  best config : {dict(best)}")
        print(f"  time        : {result.best_time_s * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
